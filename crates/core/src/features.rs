//! Automatic featurization — translating repair signals into inference-rule
//! groundings (§4.2).
//!
//! Every signal becomes unary features over the `Value?(t, a, d)` variables:
//!
//! * **Quantitative statistics** — `Value?(t,a,d) :- HasFeature(t,a,f)
//!   weight = w(d,f)`: one feature per (candidate `d`, co-occurring cell
//!   value `f = "A'=v'"`), weight learned per `(d, f)`.
//! * **Minimality prior** — `Value?(t,a,d) :- InitValue(t,a,d) weight = w`:
//!   a fixed positive weight on keeping the observed value.
//! * **External data** — `Value?(t,a,d) :- Matched(t,a,d,k) weight = w(k)`:
//!   one learned reliability weight per dictionary `k`.
//! * **Relaxed denial constraints** (§5.2, Example 6) — for each constraint
//!   σ and candidate `d`, the feature value counts the partner tuples whose
//!   *initial* values would jointly violate σ if the cell took value `d`;
//!   the weight `w(σ)` is learned (and comes out negative: violations are
//!   evidence against a candidate).
//! * **Source reliability** (§4.1 lineage features, following SLiMFast
//!   \[35\]) — for multi-source data, a candidate asserted by source `s`
//!   (via another tuple about the same entity) carries a feature with
//!   learned weight `w(s)`.

use crate::config::HoloConfig;
use holo_constraints::ast::{eval_op, Operand, TupleVar};
use holo_constraints::{ConstraintId, ConstraintSet, DenialConstraint};
use holo_dataset::{AttrId, CellRef, Dataset, FxHashMap, Sym, TupleId};
use holo_factor::{FactorGraph, FeatureRegistry, VarId};

/// Structured feature keys; interning them yields the tied weights.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FeatureKey {
    /// Quantitative-statistics feature `w(d, f)` with `f = (A', v')`.
    Cooccur {
        /// Attribute of the cell.
        attr: AttrId,
        /// Candidate value `d`.
        value: Sym,
        /// Conditioning attribute `A'`.
        cond_attr: AttrId,
        /// Conditioning value `v'`.
        cond_value: Sym,
    },
    /// The minimality prior (single fixed weight).
    Minimality,
    /// External-dictionary reliability `w(k)`.
    ExtDict {
        /// Dictionary id `k`.
        dict: u32,
    },
    /// Relaxed denial-constraint feature `w(σ)`.
    DcViolation {
        /// Constraint id σ.
        constraint: ConstraintId,
    },
    /// Source-reliability feature `w(s)`.
    Source {
        /// The asserting source (interned name).
        source: Sym,
    },
    /// Per-attribute empirical-distribution feature: the candidate's mean
    /// conditional probability given the tuple's other cells.
    Distribution {
        /// Attribute of the cell.
        attr: AttrId,
    },
    /// Fixed weight of grounded DC clique factors (Algorithm 1).
    DcFactor,
}

/// Pre-computed external-match lookup: `(cell, candidate) → dictionaries
/// asserting it` (the `Matched` relation keyed for featurization).
pub type MatchLookup = FxHashMap<(CellRef, Sym), Vec<u32>>;

/// How a buffered feature's weight is obtained from the registry at apply
/// time.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightSpec {
    /// `registry.learnable(key)`.
    Learnable(FeatureKey),
    /// `registry.learnable_init(key, prior)`.
    LearnableInit(FeatureKey, f64),
    /// `registry.fixed(key, value)`.
    Fixed(FeatureKey, f64),
}

/// One queued grounding unit: either a feature with its own weight, or a
/// group of features sharing one weight (interned once at apply time).
#[derive(Debug, Clone, PartialEq)]
enum FeatureEntry {
    /// `(candidate slot, weight spec, feature value)`.
    Single(usize, WeightSpec, f64),
    /// One weight shared by several `(slot, value)` groundings — e.g. the
    /// per-attribute distribution feature across all candidates.
    Group(WeightSpec, Vec<(usize, f64)>),
}

/// Features of one variable, collected without touching the graph or the
/// registry — the unit of work the parallel featurization stage computes
/// per cell. Applying buffers **in variable order** keeps the registry
/// interning sequence deterministic, so weight ids (and therefore every
/// downstream number) are independent of the thread count.
/// Buffers compare by content (`PartialEq`) and clone cheaply: the
/// streaming engine caches one buffer per cell and re-grounds a variable
/// only when its recomputed buffer differs from the cached one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureBuffer {
    entries: Vec<FeatureEntry>,
}

impl FeatureBuffer {
    /// Queues one feature grounding.
    pub fn push(&mut self, slot: usize, spec: WeightSpec, value: f64) {
        self.entries.push(FeatureEntry::Single(slot, spec, value));
    }

    /// Queues a shared-weight group: `spec` is interned once and every
    /// `(slot, value)` grounds against the resulting weight. Empty groups
    /// are dropped — their weight is never interned. (An ungrounded weight
    /// contributes nothing to learning or inference, so this only shifts
    /// internal weight ids, never results.)
    pub fn push_group(&mut self, spec: WeightSpec, slots: Vec<(usize, f64)>) {
        if !slots.is_empty() {
            self.entries.push(FeatureEntry::Group(spec, slots));
        }
    }

    /// Number of queued groundings.
    pub fn len(&self) -> usize {
        self.entries
            .iter()
            .map(|e| match e {
                FeatureEntry::Single(..) => 1,
                FeatureEntry::Group(_, slots) => slots.len(),
            })
            .sum()
    }

    /// Whether nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Interns the queued weights and materialises the buffer as one
    /// feature row per candidate (in queue order, exactly the rows
    /// [`FeatureBuffer::apply`] would have grounded entry by entry) — the
    /// form [`holo_factor::FactorGraph::add_variable_with_features`]
    /// consumes to append a finished variable to a live design matrix
    /// with a single splice. Borrows the buffer: the streaming engine
    /// keeps it cached per cell after grounding.
    pub fn to_rows(
        &self,
        registry: &mut FeatureRegistry<FeatureKey>,
        arity: usize,
    ) -> Vec<Vec<(holo_factor::WeightId, f64)>> {
        let intern = |registry: &mut FeatureRegistry<FeatureKey>, spec: &WeightSpec| match spec {
            WeightSpec::Learnable(key) => registry.learnable(key.clone()),
            WeightSpec::LearnableInit(key, prior) => registry.learnable_init(key.clone(), *prior),
            WeightSpec::Fixed(key, fixed) => registry.fixed(key.clone(), *fixed),
        };
        let mut rows = vec![Vec::new(); arity];
        for entry in &self.entries {
            match entry {
                FeatureEntry::Single(slot, spec, value) => {
                    let w = intern(registry, spec);
                    rows[*slot].push((w, *value));
                }
                FeatureEntry::Group(spec, slots) => {
                    let w = intern(registry, spec);
                    for (slot, value) in slots {
                        rows[*slot].push((w, *value));
                    }
                }
            }
        }
        rows
    }

    /// Interns the queued weights and grounds the features onto `var`,
    /// entry by entry through [`FactorGraph::add_feature`] (cheap while
    /// the graph has no compiled matrix — the bulk-build phase). One
    /// grounding semantics exists: this is [`FeatureBuffer::to_rows`]
    /// replayed onto an existing variable, per-candidate order included.
    pub fn apply(
        self,
        graph: &mut FactorGraph,
        registry: &mut FeatureRegistry<FeatureKey>,
        var: VarId,
    ) {
        let rows = self.to_rows(registry, graph.var(var).arity());
        for (k, row) in rows.into_iter().enumerate() {
            for (w, x) in row {
                graph.add_feature(var, k, w, x);
            }
        }
    }
}

/// Adds the quantitative-statistics features for one variable.
pub fn add_cooccur_features(
    graph: &mut FactorGraph,
    registry: &mut FeatureRegistry<FeatureKey>,
    ds: &Dataset,
    var: VarId,
    cell: CellRef,
    candidates: &[Sym],
) {
    let mut buf = FeatureBuffer::default();
    collect_cooccur_features(&mut buf, ds, cell, candidates);
    buf.apply(graph, registry, var);
}

/// Buffer-collecting form of [`add_cooccur_features`].
pub fn collect_cooccur_features(
    buf: &mut FeatureBuffer,
    ds: &Dataset,
    cell: CellRef,
    candidates: &[Sym],
) {
    for cond_attr in ds.schema().attrs() {
        if cond_attr == cell.attr {
            continue;
        }
        let cond_value = ds.cell(cell.tuple, cond_attr);
        if cond_value.is_null() {
            continue;
        }
        for (k, &d) in candidates.iter().enumerate() {
            let spec = WeightSpec::Learnable(FeatureKey::Cooccur {
                attr: cell.attr,
                value: d,
                cond_attr,
                cond_value,
            });
            buf.push(k, spec, 1.0);
        }
    }
}

/// Adds the empirical-distribution feature: for each candidate `d`, the
/// mean of `Pr[d | v']` across the tuple's other non-null cells whose
/// values clear `min_support`. One learnable weight per attribute,
/// initialised to `prior` — the signal is informative from the first
/// iteration even for values that never appear in clean evidence.
#[allow(clippy::too_many_arguments)]
pub fn add_distribution_feature(
    graph: &mut FactorGraph,
    registry: &mut FeatureRegistry<FeatureKey>,
    ds: &Dataset,
    stats: &holo_dataset::CooccurStats,
    var: VarId,
    cell: CellRef,
    candidates: &[Sym],
    min_support: u32,
    prior: f64,
) {
    let mut buf = FeatureBuffer::default();
    collect_distribution_feature(&mut buf, ds, stats, cell, candidates, min_support, prior);
    buf.apply(graph, registry, var);
}

/// Buffer-collecting form of [`add_distribution_feature`].
pub fn collect_distribution_feature(
    buf: &mut FeatureBuffer,
    ds: &Dataset,
    stats: &holo_dataset::CooccurStats,
    cell: CellRef,
    candidates: &[Sym],
    min_support: u32,
    prior: f64,
) {
    let mut sums = vec![0.0f64; candidates.len()];
    let mut cond_attrs = 0usize;
    // Dense backend: resolve each candidate's value code once per cell,
    // then probe count rows by code instead of re-hashing `(key, Sym)`
    // per (partner, candidate) pair. Unseen candidates get the sentinel
    // `u32::MAX`, which every block answers with count 0 — the same 0.0
    // probability the hash path yields, added in the same order, so the
    // sums are bit-identical.
    let cand_codes: Option<Vec<u32>> = stats.codes().map(|codes| {
        candidates
            .iter()
            .map(|&d| codes.code(cell.attr, d).unwrap_or(u32::MAX))
            .collect()
    });
    for cond_attr in ds.schema().attrs() {
        if cond_attr == cell.attr {
            continue;
        }
        let v_cond = ds.cell(cell.tuple, cond_attr);
        if v_cond.is_null() {
            continue;
        }
        let denom = stats.freq().count(cond_attr, v_cond);
        if denom < min_support.max(1) {
            continue;
        }
        cond_attrs += 1;
        if let Some(cc) = &cand_codes {
            let view = stats.group(cond_attr, v_cond, cell.attr);
            let df = f64::from(denom);
            for (k, &code) in cc.iter().enumerate() {
                let count = view.map_or(0, |g| g.count_by_code(code));
                sums[k] += f64::from(count) / df;
            }
        } else {
            for (k, &d) in candidates.iter().enumerate() {
                sums[k] += stats.conditional_prob(cond_attr, v_cond, cell.attr, d);
            }
        }
    }
    if cond_attrs == 0 {
        return;
    }
    let slots: Vec<(usize, f64)> = sums
        .iter()
        .enumerate()
        .filter_map(|(k, sum)| {
            let mean = sum / cond_attrs as f64;
            (mean > 0.0).then_some((k, mean))
        })
        .collect();
    buf.push_group(
        WeightSpec::LearnableInit(FeatureKey::Distribution { attr: cell.attr }, prior),
        slots,
    );
}

/// Adds the minimality prior: fires on the candidate equal to the initial
/// observed value.
pub fn add_minimality_feature(
    graph: &mut FactorGraph,
    registry: &mut FeatureRegistry<FeatureKey>,
    config: &HoloConfig,
    var: VarId,
    init: Sym,
    candidates: &[Sym],
) {
    let mut buf = FeatureBuffer::default();
    collect_minimality_feature(&mut buf, config, init, candidates);
    buf.apply(graph, registry, var);
}

/// Buffer-collecting form of [`add_minimality_feature`].
pub fn collect_minimality_feature(
    buf: &mut FeatureBuffer,
    config: &HoloConfig,
    init: Sym,
    candidates: &[Sym],
) {
    for (k, &d) in candidates.iter().enumerate() {
        if d == init {
            let spec = WeightSpec::Fixed(FeatureKey::Minimality, config.minimality_weight);
            buf.push(k, spec, 1.0);
        }
    }
}

/// Adds external-match features from the `Matched` lookup. Dictionary
/// weights start at `dict_prior` (learnable): external data is trusted a
/// priori and evidence cells with dictionary coverage recalibrate it.
pub fn add_external_features(
    graph: &mut FactorGraph,
    registry: &mut FeatureRegistry<FeatureKey>,
    matches: &MatchLookup,
    var: VarId,
    cell: CellRef,
    candidates: &[Sym],
    dict_prior: f64,
) {
    let mut buf = FeatureBuffer::default();
    collect_external_features(&mut buf, matches, cell, candidates, dict_prior);
    buf.apply(graph, registry, var);
}

/// Buffer-collecting form of [`add_external_features`].
pub fn collect_external_features(
    buf: &mut FeatureBuffer,
    matches: &MatchLookup,
    cell: CellRef,
    candidates: &[Sym],
    dict_prior: f64,
) {
    for (k, &d) in candidates.iter().enumerate() {
        if let Some(dicts) = matches.get(&(cell, d)) {
            for &dict in dicts {
                let spec = WeightSpec::LearnableInit(FeatureKey::ExtDict { dict }, dict_prior);
                buf.push(k, spec, 1.0);
            }
        }
    }
}

/// Relaxed denial-constraint featurizer (§5.2).
///
/// Holds per-constraint partner indexes so the would-be-violation counts
/// are computed with hash-join blocking rather than full scans.
pub struct DcFeaturizer<'a> {
    ds: &'a Dataset,
    constraints: &'a ConstraintSet,
    /// Per constraint, per role: blocking index over partner tuples.
    indexes: Vec<Vec<RoleIndex>>,
    /// Scan budget per (cell, candidate) — bounds worst-case block sizes.
    scan_cap: usize,
    /// Count saturation (equals the scan budget).
    count_cap: u32,
    /// Divisor applied to counts when emitting feature values, so SGD sees
    /// O(1)-magnitude features while the contribution stays *linear* in
    /// the violation count — Example 6 grounds one factor per partner
    /// tuple, so the total log-linear contribution is `w · count`.
    normalizer: f64,
    /// Initial value of the learnable per-constraint weights.
    prior: f64,
}

/// Blocking index for evaluating a constraint with the target cell playing
/// one specific role (t1 or t2).
struct RoleIndex {
    /// The role the *target* tuple plays.
    role: TupleVar,
    /// Attributes the constraint reads on the target cell's side, used to
    /// decide whether a cell participates at all.
    target_attrs: Vec<AttrId>,
    /// `(target-side attr, partner-side attr)` pairs of the cross-tuple
    /// equality predicates — the blocking key.
    eq_pairs: Vec<(AttrId, AttrId)>,
    /// Partner tuples bucketed by their side of the blocking key.
    buckets: FxHashMap<Vec<Sym>, Vec<TupleId>>,
}

impl<'a> DcFeaturizer<'a> {
    /// Builds the per-constraint indexes. `O(|Σ| · |D|)`.
    pub fn new(ds: &'a Dataset, constraints: &'a ConstraintSet, config: &HoloConfig) -> Self {
        let mut indexes = Vec::with_capacity(constraints.len());
        for (_, c) in constraints.iter() {
            let mut role_indexes = Vec::new();
            if c.two_tuple {
                role_indexes.push(RoleIndex::build(ds, c, TupleVar::T1));
                if !c.is_symmetric() {
                    role_indexes.push(RoleIndex::build(ds, c, TupleVar::T2));
                }
            }
            indexes.push(role_indexes);
        }
        DcFeaturizer {
            ds,
            constraints,
            indexes,
            scan_cap: 512,
            count_cap: 512,
            normalizer: f64::from(config.dc_feature_cap.max(1)),
            prior: config.dc_violation_prior,
        }
    }

    /// Would-be-violation counts of every candidate of `cell` for
    /// constraint `sigma`, with all other cells at their initial values.
    /// `component` optionally restricts partners to an Algorithm 3 group.
    pub fn violation_counts(
        &self,
        sigma: ConstraintId,
        cell: CellRef,
        candidates: &[Sym],
        component: Option<&FxHashMap<TupleId, u32>>,
    ) -> Vec<u32> {
        let c = self.constraints.get(sigma);
        let mut counts = vec![0u32; candidates.len()];
        for role_index in &self.indexes[sigma] {
            if !role_index.target_attrs.contains(&cell.attr) {
                continue;
            }
            role_index.accumulate(
                self.ds,
                c,
                cell,
                candidates,
                component,
                self.scan_cap,
                self.count_cap,
                &mut counts,
            );
        }
        counts
    }

    /// Adds the relaxed-DC features of one variable across all constraints.
    #[allow(clippy::too_many_arguments)]
    pub fn add_features(
        &self,
        graph: &mut FactorGraph,
        registry: &mut FeatureRegistry<FeatureKey>,
        var: VarId,
        cell: CellRef,
        candidates: &[Sym],
        components: Option<&[FxHashMap<TupleId, u32>]>,
    ) {
        let mut buf = FeatureBuffer::default();
        self.collect_features(&mut buf, cell, candidates, components);
        buf.apply(graph, registry, var);
    }

    /// Buffer-collecting form of [`DcFeaturizer::add_features`].
    pub fn collect_features(
        &self,
        buf: &mut FeatureBuffer,
        cell: CellRef,
        candidates: &[Sym],
        components: Option<&[FxHashMap<TupleId, u32>]>,
    ) {
        for (sigma, _) in self.constraints.iter() {
            let component = components.map(|c| &c[sigma]);
            let counts = self.violation_counts(sigma, cell, candidates, component);
            let slots: Vec<(usize, f64)> = counts
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(k, &count)| (k, f64::from(count) / self.normalizer))
                .collect();
            buf.push_group(
                WeightSpec::LearnableInit(
                    FeatureKey::DcViolation { constraint: sigma },
                    self.prior,
                ),
                slots,
            );
        }
    }
}

impl RoleIndex {
    fn build(ds: &Dataset, c: &DenialConstraint, role: TupleVar) -> Self {
        let (t1_attrs, t2_attrs) = c.attrs_by_tuple();
        let (target_attrs, _partner_attrs) = match role {
            TupleVar::T1 => (t1_attrs, t2_attrs),
            TupleVar::T2 => (t2_attrs, t1_attrs),
        };
        // Cross-tuple equality predicates, oriented (target attr, partner attr).
        let mut eq_pairs = Vec::new();
        for p in &c.predicates {
            if !p.is_cross_tuple_eq() {
                continue;
            }
            let rhs_attr = match p.rhs {
                Operand::Cell(_, a) => a,
                Operand::Const(_) => continue,
            };
            let (t1a, t2a) = match p.lhs_tuple {
                TupleVar::T1 => (p.lhs_attr, rhs_attr),
                TupleVar::T2 => (rhs_attr, p.lhs_attr),
            };
            match role {
                TupleVar::T1 => eq_pairs.push((t1a, t2a)),
                TupleVar::T2 => eq_pairs.push((t2a, t1a)),
            }
        }
        // Bucket partner tuples by their side of the key (initial values).
        let mut buckets: FxHashMap<Vec<Sym>, Vec<TupleId>> = FxHashMap::default();
        'tuples: for t in ds.tuples() {
            let mut key = Vec::with_capacity(eq_pairs.len());
            for &(_, partner_attr) in &eq_pairs {
                let v = ds.cell(t, partner_attr);
                if v.is_null() {
                    continue 'tuples;
                }
                key.push(v);
            }
            buckets.entry(key).or_default().push(t);
        }
        RoleIndex {
            role,
            target_attrs,
            eq_pairs,
            buckets,
        }
    }

    /// Accumulates per-candidate violation counts into `counts`.
    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        &self,
        ds: &Dataset,
        c: &DenialConstraint,
        cell: CellRef,
        candidates: &[Sym],
        component: Option<&FxHashMap<TupleId, u32>>,
        scan_cap: usize,
        count_cap: u32,
        counts: &mut [u32],
    ) {
        let target_component = component.and_then(|m| m.get(&cell.tuple).copied());
        if component.is_some() && target_component.is_none() {
            // Partitioning on, and this tuple is in no conflict component:
            // no partners to consider.
            return;
        }
        let mut key = Vec::with_capacity(self.eq_pairs.len());
        for (k, &d) in candidates.iter().enumerate() {
            key.clear();
            let mut key_ok = true;
            for &(target_attr, _) in &self.eq_pairs {
                let v = if target_attr == cell.attr {
                    d
                } else {
                    ds.cell(cell.tuple, target_attr)
                };
                if v.is_null() {
                    key_ok = false;
                    break;
                }
                key.push(v);
            }
            if !key_ok {
                continue;
            }
            let Some(bucket) = self.buckets.get(&key) else {
                continue;
            };
            let mut scanned = 0usize;
            for &partner in bucket {
                if partner == cell.tuple {
                    continue;
                }
                if let (Some(tc), Some(m)) = (target_component, component) {
                    if m.get(&partner) != Some(&tc) {
                        continue;
                    }
                }
                scanned += 1;
                if scanned > scan_cap {
                    break;
                }
                let violated = match self.role {
                    TupleVar::T1 => eval_constraint_subst(
                        ds,
                        c,
                        cell.tuple,
                        partner,
                        cell.attr,
                        d,
                        TupleVar::T1,
                    ),
                    TupleVar::T2 => eval_constraint_subst(
                        ds,
                        c,
                        partner,
                        cell.tuple,
                        cell.attr,
                        d,
                        TupleVar::T2,
                    ),
                };
                if violated {
                    counts[k] += 1;
                    if counts[k] >= count_cap {
                        break;
                    }
                }
            }
        }
    }
}

/// Evaluates all predicates of `c` for the pair `(t1, t2)` with a single
/// substituted cell: the cell `(subst_role, subst_attr)` reads `subst_value`
/// instead of its stored value.
fn eval_constraint_subst(
    ds: &Dataset,
    c: &DenialConstraint,
    t1: TupleId,
    t2: TupleId,
    subst_attr: AttrId,
    subst_value: Sym,
    subst_role: TupleVar,
) -> bool {
    if t1 == t2 {
        return false;
    }
    let read = |tv: TupleVar, attr: AttrId| -> Sym {
        if tv == subst_role && attr == subst_attr {
            return subst_value;
        }
        match tv {
            TupleVar::T1 => ds.cell(t1, attr),
            TupleVar::T2 => ds.cell(t2, attr),
        }
    };
    c.predicates.iter().all(|p| {
        let lhs = read(p.lhs_tuple, p.lhs_attr);
        let rhs = match p.rhs {
            Operand::Cell(tv, a) => read(tv, a),
            Operand::Const(sym) => sym,
        };
        eval_op(ds, lhs, p.op, rhs)
    })
}

/// Source-reliability featurizer: index of tuples per entity value plus the
/// source column.
///
/// Source weights start from a SLiMFast-style \[35\] agreement prior: the
/// log-odds of each source agreeing with the per-(entity, attribute)
/// plurality vote. On majority-dirty data (Flights) there is almost no
/// clean evidence to learn reliabilities from, and this is exactly the
/// initialisation data-fusion systems bootstrap with; SGD refines it
/// wherever evidence exists.
pub struct SourceFeaturizer {
    entity_attr: AttrId,
    source_attr: AttrId,
    by_entity: FxHashMap<Sym, Vec<TupleId>>,
    /// Source → initial reliability weight (clamped log-odds).
    priors: FxHashMap<Sym, f64>,
}

impl SourceFeaturizer {
    /// Builds the entity index and the agreement priors. Fails if either
    /// attribute is missing.
    pub fn new(
        ds: &Dataset,
        entity_attr_name: &str,
        source_attr_name: &str,
    ) -> Result<Self, crate::error::HoloError> {
        let entity_attr = ds.require_attr(entity_attr_name)?;
        let source_attr = ds.require_attr(source_attr_name)?;
        let mut by_entity: FxHashMap<Sym, Vec<TupleId>> = FxHashMap::default();
        for t in ds.tuples() {
            let e = ds.cell(t, entity_attr);
            if !e.is_null() {
                by_entity.entry(e).or_default().push(t);
            }
        }
        // Reliability estimation à la SLiMFast/EM: start from uniform
        // source weights, alternate (truth ← weighted vote) and
        // (reliability ← agreement with estimated truth). Unanimous
        // groups carry no signal and are skipped. Three rounds suffice —
        // further iterations move weights by < 1e-3 on the evaluated
        // workloads.
        let mut weights: FxHashMap<Sym, f64> = FxHashMap::default();
        let mut priors: FxHashMap<Sym, f64> = FxHashMap::default();
        let contested_attrs: Vec<AttrId> = ds
            .schema()
            .attrs()
            .filter(|&a| a != entity_attr && a != source_attr)
            .collect();
        for _round in 0..3 {
            let mut agree: FxHashMap<Sym, (f64, f64)> = FxHashMap::default();
            for rows in by_entity.values() {
                for &attr in &contested_attrs {
                    let mut votes: FxHashMap<Sym, f64> = FxHashMap::default();
                    let mut distinct = 0usize;
                    for &t in rows {
                        let v = ds.cell(t, attr);
                        if v.is_null() {
                            continue;
                        }
                        let src = ds.cell(t, source_attr);
                        let w = weights.get(&src).copied().unwrap_or(1.0);
                        let entry = votes.entry(v).or_insert(0.0);
                        if *entry == 0.0 {
                            distinct += 1;
                        }
                        *entry += w.max(0.05);
                    }
                    if distinct < 2 {
                        continue;
                    }
                    let Some((&truth_estimate, _)) = votes.iter().max_by(|(s1, w1), (s2, w2)| {
                        w1.partial_cmp(w2)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(s2.cmp(s1))
                    }) else {
                        continue;
                    };
                    for &t in rows {
                        let v = ds.cell(t, attr);
                        let src = ds.cell(t, source_attr);
                        if v.is_null() || src.is_null() {
                            continue;
                        }
                        let entry = agree.entry(src).or_insert((0.0, 0.0));
                        entry.1 += 1.0;
                        if v == truth_estimate {
                            entry.0 += 1.0;
                        }
                    }
                }
            }
            weights.clear();
            priors.clear();
            for (src, (a, n)) in agree {
                let rate = (a + 1.0) / (n + 2.0);
                weights.insert(src, rate / (1.0 - rate));
                priors.insert(src, (rate / (1.0 - rate)).ln().clamp(-2.0, 2.0));
            }
        }
        Ok(SourceFeaturizer {
            entity_attr,
            source_attr,
            by_entity,
            priors,
        })
    }

    /// Adds, for each candidate `d` of `cell`, one feature per source that
    /// asserts `d` for the same entity and attribute.
    pub fn add_features(
        &self,
        graph: &mut FactorGraph,
        registry: &mut FeatureRegistry<FeatureKey>,
        ds: &Dataset,
        var: VarId,
        cell: CellRef,
        candidates: &[Sym],
    ) {
        let mut buf = FeatureBuffer::default();
        self.collect_features(&mut buf, ds, cell, candidates);
        buf.apply(graph, registry, var);
    }

    /// Buffer-collecting form of [`SourceFeaturizer::add_features`].
    pub fn collect_features(
        &self,
        buf: &mut FeatureBuffer,
        ds: &Dataset,
        cell: CellRef,
        candidates: &[Sym],
    ) {
        if cell.attr == self.entity_attr || cell.attr == self.source_attr {
            return;
        }
        let entity = ds.cell(cell.tuple, self.entity_attr);
        if entity.is_null() {
            return;
        }
        let Some(rows) = self.by_entity.get(&entity) else {
            return;
        };
        // sources_for[d] = deduped sources asserting candidate d.
        for (k, &d) in candidates.iter().enumerate() {
            let mut seen: Vec<Sym> = Vec::new();
            for &t in rows {
                if ds.cell(t, cell.attr) != d {
                    continue;
                }
                let src = ds.cell(t, self.source_attr);
                if src.is_null() || seen.contains(&src) {
                    continue;
                }
                seen.push(src);
                let prior = self.priors.get(&src).copied().unwrap_or(0.0);
                let spec = WeightSpec::LearnableInit(FeatureKey::Source { source: src }, prior);
                buf.push(k, spec, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_constraints::parse_constraints;
    use holo_dataset::Schema;
    use holo_factor::Variable;

    fn graph_with_var(candidates: &[Sym]) -> (FactorGraph, VarId) {
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query(candidates.to_vec(), Some(0)));
        (g, v)
    }

    #[test]
    fn cooccur_features_one_per_cond_attr_and_candidate() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
        ds.push_row(&["60608", "Chicago", "IL"]);
        let city = ds.schema().attr_id("City").unwrap();
        let chicago = ds.pool().get("Chicago").unwrap();
        let other = ds.intern("Cicago");
        let cell = CellRef {
            tuple: 0usize.into(),
            attr: city,
        };
        let (mut g, v) = graph_with_var(&[chicago, other]);
        let mut reg = FeatureRegistry::new();
        add_cooccur_features(&mut g, &mut reg, &ds, v, cell, &[chicago, other]);
        // 2 conditioning attrs × 2 candidates = 4 feature entries,
        // 4 distinct weights (keys differ in candidate and cond attr).
        assert_eq!(g.features(v, 0).len(), 2);
        assert_eq!(g.features(v, 1).len(), 2);
        assert_eq!(reg.len(), 4);
    }

    #[test]
    fn cooccur_skips_null_conditioning() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["", "Chicago"]);
        let city = ds.schema().attr_id("City").unwrap();
        let chicago = ds.pool().get("Chicago").unwrap();
        let cell = CellRef {
            tuple: 0usize.into(),
            attr: city,
        };
        let (mut g, v) = graph_with_var(&[chicago]);
        let mut reg = FeatureRegistry::new();
        add_cooccur_features(&mut g, &mut reg, &ds, v, cell, &[chicago]);
        assert!(g.features(v, 0).is_empty());
    }

    #[test]
    fn minimality_fires_only_on_init() {
        let mut ds = Dataset::new(Schema::new(vec!["City"]));
        ds.push_row(&["Cicago"]);
        let init = ds.pool().get("Cicago").unwrap();
        let alt = ds.intern("Chicago");
        let (mut g, v) = graph_with_var(&[init, alt]);
        let mut reg = FeatureRegistry::new();
        let config = HoloConfig::default();
        add_minimality_feature(&mut g, &mut reg, &config, v, init, &[init, alt]);
        assert_eq!(g.features(v, 0).len(), 1);
        assert!(g.features(v, 1).is_empty());
        let w = reg.build_weights();
        let (wid, x) = g.features(v, 0)[0];
        assert_eq!(w.get(wid), config.minimality_weight);
        assert_eq!(x, 1.0);
        assert!(w.is_fixed(wid));
    }

    #[test]
    fn external_features_per_dictionary() {
        let mut ds = Dataset::new(Schema::new(vec!["City"]));
        ds.push_row(&["Cicago"]);
        let init = ds.pool().get("Cicago").unwrap();
        let chicago = ds.intern("Chicago");
        let cell = CellRef {
            tuple: 0usize.into(),
            attr: AttrId(0),
        };
        let mut matches: MatchLookup = MatchLookup::default();
        matches.insert((cell, chicago), vec![0, 1]);
        let (mut g, v) = graph_with_var(&[init, chicago]);
        let mut reg = FeatureRegistry::new();
        add_external_features(&mut g, &mut reg, &matches, v, cell, &[init, chicago], 2.0);
        assert!(g.features(v, 0).is_empty());
        assert_eq!(g.features(v, 1).len(), 2, "one feature per asserting dict");
        assert_eq!(reg.len(), 2);
        let w = reg.build_weights();
        let (wid, _) = g.features(v, 1)[0];
        assert_eq!(w.get(wid), 2.0, "dictionary prior");
        assert!(!w.is_fixed(wid), "dictionary weight stays learnable");
    }

    #[test]
    fn dc_violation_counts_respect_candidates() {
        // FD Zip → City. Tuples: three say 60608→Chicago, target cell is
        // the city of a fourth 60608 tuple.
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let config = HoloConfig::default();
        let feat = DcFeaturizer::new(&ds, &cons, &config);
        let city = ds.schema().attr_id("City").unwrap();
        let cell = CellRef {
            tuple: 3usize.into(),
            attr: city,
        };
        let chicago = ds.pool().get("Chicago").unwrap();
        let cicago = ds.pool().get("Cicago").unwrap();
        let counts = feat.violation_counts(0, cell, &[cicago, chicago], None);
        // Keeping "Cicago" violates against 3 partners; "Chicago" against 0.
        assert_eq!(counts, vec![3, 0]);
    }

    #[test]
    fn dc_violation_counts_for_key_attribute() {
        // The candidate value participates in the blocking key itself
        // (repairing the Zip of a tuple): counts must follow the candidate.
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60609", "Evanston"]);
        ds.push_row(&["60609", "Chicago"]); // target: its zip is wrong
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let config = HoloConfig::default();
        let feat = DcFeaturizer::new(&ds, &cons, &config);
        let zip = ds.schema().attr_id("Zip").unwrap();
        let cell = CellRef {
            tuple: 2usize.into(),
            attr: zip,
        };
        let z08 = ds.pool().get("60608").unwrap();
        let z09 = ds.pool().get("60609").unwrap();
        let counts = feat.violation_counts(0, cell, &[z09, z08], None);
        // Zip 60609 conflicts with t1 (Evanston ≠ Chicago) → 1 violation.
        // Zip 60608 agrees with t0 (Chicago = Chicago) → 0 violations.
        assert_eq!(counts, vec![1, 0]);
    }

    #[test]
    fn dc_features_added_with_learned_weight() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let config = HoloConfig::default();
        let feat = DcFeaturizer::new(&ds, &cons, &config);
        let city = ds.schema().attr_id("City").unwrap();
        let cell = CellRef {
            tuple: 1usize.into(),
            attr: city,
        };
        let cicago = ds.pool().get("Cicago").unwrap();
        let chicago = ds.pool().get("Chicago").unwrap();
        let (mut g, v) = graph_with_var(&[cicago, chicago]);
        let mut reg = FeatureRegistry::new();
        feat.add_features(&mut g, &mut reg, v, cell, &[cicago, chicago], None);
        // Candidate "Cicago" gets the violation feature (count 1, scaled
        // by the normalizer); "Chicago" violates nothing → no entry.
        assert_eq!(g.features(v, 0).len(), 1);
        assert_eq!(
            g.features(v, 0)[0].1,
            1.0 / f64::from(config.dc_feature_cap)
        );
        assert!(g.features(v, 1).is_empty());
        let w = reg.build_weights();
        assert!(
            !w.is_fixed(g.features(v, 0)[0].0),
            "DC feature weight is learned"
        );
    }

    #[test]
    fn partitioning_restricts_partners() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let config = HoloConfig::default();
        let feat = DcFeaturizer::new(&ds, &cons, &config);
        let city = ds.schema().attr_id("City").unwrap();
        let cell = CellRef {
            tuple: 1usize.into(),
            attr: city,
        };
        let cicago = ds.pool().get("Cicago").unwrap();
        // Component map placing the two tuples in different components:
        // the partner is filtered out.
        let mut comp: FxHashMap<TupleId, u32> = FxHashMap::default();
        comp.insert(0usize.into(), 0);
        comp.insert(1usize.into(), 1);
        let counts = feat.violation_counts(0, cell, &[cicago], Some(&comp));
        assert_eq!(counts, vec![0]);
        // Same component: the violation is counted.
        comp.insert(0usize.into(), 1);
        let counts = feat.violation_counts(0, cell, &[cicago], Some(&comp));
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn source_features_assert_candidates() {
        let mut ds = Dataset::new(Schema::new(vec!["Flight", "Source", "Dep"]));
        ds.push_row(&["UA100", "s1", "09:00"]);
        ds.push_row(&["UA100", "s2", "09:00"]);
        ds.push_row(&["UA100", "s3", "09:30"]);
        ds.push_row(&["DL200", "s1", "10:00"]);
        let dep = ds.schema().attr_id("Dep").unwrap();
        let nine = ds.pool().get("09:00").unwrap();
        let nine30 = ds.pool().get("09:30").unwrap();
        let cell = CellRef {
            tuple: 2usize.into(),
            attr: dep,
        };
        let sf = SourceFeaturizer::new(&ds, "Flight", "Source").unwrap();
        let (mut g, v) = graph_with_var(&[nine30, nine]);
        let mut reg = FeatureRegistry::new();
        sf.add_features(&mut g, &mut reg, &ds, v, cell, &[nine30, nine]);
        // 09:30 asserted only by s3; 09:00 by s1 and s2.
        assert_eq!(g.features(v, 0).len(), 1);
        assert_eq!(g.features(v, 1).len(), 2);
        // Entities do not leak: DL200's s1 assertion is for a different
        // flight and contributes nothing extra (s1 already counted once).
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn source_featurizer_rejects_missing_attrs() {
        let mut ds = Dataset::new(Schema::new(vec!["a"]));
        ds.push_row(&["x"]);
        assert!(SourceFeaturizer::new(&ds, "Flight", "Source").is_err());
    }
}
