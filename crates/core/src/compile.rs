//! Compilation: from signals to a grounded factor graph.
//!
//! Mirrors §4 of the paper. The compiler:
//!
//! 1. assigns a `Value?` random variable to every noisy cell, with the
//!    Algorithm 2 pruned candidate domain (plus any values asserted by
//!    external-dictionary matches);
//! 2. samples evidence variables from the clean cells (§2.2 — evidence is
//!    what the weights are learned from; sampling caps the training-set
//!    size the way DeepDive batches do);
//! 3. featurizes every variable: co-occurrence statistics, minimality
//!    prior, external matches, relaxed DC features (§5.2), and optional
//!    source-reliability features;
//! 4. in the factor variants, grounds denial constraints into clique
//!    factors (Algorithm 1), optionally restricted to the Algorithm 3
//!    tuple groups — pair discovery and clique construction both shard
//!    across threads with ordered merges;
//! 5. builds the CSR design matrix, the flat scoring substrate Learn and
//!    Infer read.

use crate::config::HoloConfig;
use crate::domain::CellDomains;
use crate::error::HoloError;
use crate::features::{
    collect_cooccur_features, collect_distribution_feature, collect_external_features,
    collect_minimality_feature, DcFeaturizer, FeatureBuffer, FeatureKey, MatchLookup,
    SourceFeaturizer,
};
use holo_constraints::ast::{Op, Operand, TupleVar};
use holo_constraints::{ConflictHypergraph, ConstraintSet, Violation};
use holo_dataset::{AttrId, CellRef, CooccurStats, Dataset, FxHashMap, FxHashSet, Sym, TupleId};
use holo_factor::{
    CliqueFactor, CmpOp, FactorGraph, FactorOperand, FactorPredicate, FeatureRegistry, VarId,
    Variable, Weights,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Size/shape diagnostics of a compiled model (reported by the harness —
/// this is the "factor graph size" the paper's optimisations shrink).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompileStats {
    /// Query variables (noisy cells with ≥ 2 candidates).
    pub query_vars: usize,
    /// Noisy cells whose pruned domain was a singleton (unrepairable at
    /// this τ; they keep their value).
    pub singleton_noisy_cells: usize,
    /// Evidence variables sampled for learning.
    pub evidence_vars: usize,
    /// Total candidates across query variables.
    pub total_candidates: usize,
    /// Grounded unary feature entries + clique factors.
    pub factors: usize,
    /// Grounded DC clique factors.
    pub cliques: usize,
    /// Tuple pairs considered during DC-factor grounding.
    pub dc_pairs_considered: usize,
    /// Constraints whose clique cap was hit.
    pub clique_cap_hits: usize,
}

/// A compiled, grounded model ready for learning and inference.
pub struct CompiledModel {
    /// The factor graph.
    pub graph: FactorGraph,
    /// Initial weights (fixed priors set, learnables at 0).
    pub weights: Weights,
    /// The feature registry (kept for introspection).
    pub registry: FeatureRegistry<FeatureKey>,
    /// Query cells, parallel to the query variable ids in `query_vars`.
    pub query_cells: Vec<CellRef>,
    /// Query variable ids, parallel to `query_cells`.
    pub query_vars: Vec<VarId>,
    /// Shape diagnostics.
    pub stats: CompileStats,
}

/// Everything `compile` reads.
pub struct CompileInput<'a> {
    /// The (dirty) dataset.
    pub ds: &'a Dataset,
    /// The denial constraints Σ.
    pub constraints: &'a ConstraintSet,
    /// The noisy-cell set `D_n` from error detection.
    pub noisy: &'a FxHashSet<CellRef>,
    /// Detected violations (reused for Algorithm 3 partitioning).
    pub violations: &'a [Violation],
    /// Co-occurrence statistics of the dataset.
    pub stats: &'a CooccurStats,
    /// External-match lookup (may be empty).
    pub matches: &'a MatchLookup,
    /// Pipeline configuration.
    pub config: &'a HoloConfig,
}

/// Compiles the full model.
pub fn compile(input: &CompileInput<'_>) -> Result<CompiledModel, HoloError> {
    let CompileInput {
        ds,
        constraints,
        noisy,
        violations,
        stats,
        matches,
        config,
    } = *input;

    let threads = config.effective_threads();
    let mut graph = FactorGraph::new();
    let mut registry: FeatureRegistry<FeatureKey> = FeatureRegistry::new();
    let mut cstats = CompileStats::default();

    // ---- 1. domains for noisy cells (Alg. 2 + dictionary assertions) ----
    let mut asserted_by_cell: FxHashMap<CellRef, Vec<Sym>> = FxHashMap::default();
    for &(cell, sym) in matches.keys() {
        asserted_by_cell.entry(cell).or_default().push(sym);
    }
    let mut noisy_cells: Vec<CellRef> = noisy.iter().copied().collect();
    noisy_cells.sort_unstable();
    // Optional BClean-style correlation gate: computed once from the
    // maintained counts (cached inside the statistics until the next
    // mutation) and applied to both the noisy and evidence prunes.
    let gate = config
        .cor_strength
        .map(|min_corr| crate::domain::PruneGate {
            corr: stats.correlations(),
            min_corr,
        });
    // Per-cell pruning reads only the dataset and the statistics, so the
    // noisy cells shard across worker threads; merging in sorted-cell
    // order keeps the result independent of the thread count.
    let pruned = holo_parallel::parallel_map(threads, &noisy_cells, |_, &cell| {
        crate::domain::prune_cell_gated(
            ds,
            cell,
            stats,
            config.tau,
            config.max_domain,
            config.min_cond_support,
            gate,
        )
    });
    let mut domains = CellDomains::default();
    for (&cell, mut dom) in noisy_cells.iter().zip(pruned) {
        if let Some(asserted) = asserted_by_cell.get(&cell) {
            for &v in asserted {
                if !dom.contains(&v) {
                    dom.push(v);
                }
            }
        }
        domains.insert(cell, dom);
    }

    // ---- 2. variables ----
    let mut cell_vars: FxHashMap<CellRef, VarId> = FxHashMap::default();
    let mut query_cells = Vec::new();
    let mut query_vars = Vec::new();
    for &cell in &noisy_cells {
        let dom = domains.get(cell).to_vec();
        if dom.len() < 2 {
            cstats.singleton_noisy_cells += 1;
            continue;
        }
        let init = ds.cell_ref(cell);
        let init_idx = dom.iter().position(|&v| v == init);
        let var = graph.add_variable(Variable::query(dom, init_idx));
        cell_vars.insert(cell, var);
        query_cells.push(cell);
        query_vars.push(var);
    }
    cstats.query_vars = query_vars.len();
    cstats.total_candidates = query_vars.iter().map(|&v| graph.var(v).arity()).sum();

    // Evidence: sample clean cells per attribute. Selection stays
    // sequential (it consumes the seeded RNG); the Algorithm 2 pruning of
    // the selected cells — the expensive part — shards across threads.
    let selected = select_evidence_cells(ds, noisy, config);
    let evidence_tau = config.tau.min(config.evidence_tau_cap);
    let evidence_domains = holo_parallel::parallel_map(threads, &selected, |_, &cell| {
        crate::domain::prune_cell_gated(
            ds,
            cell,
            stats,
            evidence_tau,
            config.max_domain,
            config.min_cond_support,
            gate,
        )
    });
    let mut evidence: Vec<(CellRef, Vec<Sym>, usize)> = Vec::new();
    for (&cell, mut dom) in selected.iter().zip(evidence_domains) {
        // Dictionary assertions join the evidence domains too: an
        // evidence cell whose observed value beats the asserted one is
        // exactly the negative example that trains the dictionary's
        // reliability weight w(k) down when coverage is poor.
        if let Some(asserted) = asserted_by_cell.get(&cell) {
            for &v in asserted {
                if !dom.contains(&v) {
                    dom.push(v);
                }
            }
        }
        if dom.len() < 2 {
            continue;
        }
        // The pruner keeps a cell's observed value by construction; if a
        // pruning configuration ever breaks that, surface the cell as a
        // typed error rather than a crash.
        let Some(observed) = dom.iter().position(|&v| v == ds.cell_ref(cell)) else {
            return Err(HoloError::PrunedInitialValue {
                cell,
                attr: ds.schema().attr_name(cell.attr).to_string(),
            });
        };
        evidence.push((cell, dom, observed));
    }
    cstats.evidence_vars = evidence.len();
    let mut evidence_vars: Vec<(CellRef, VarId)> = Vec::with_capacity(evidence.len());
    for (cell, dom, observed) in evidence {
        let var = graph.add_variable(Variable::evidence(dom, observed));
        evidence_vars.push((cell, var));
    }

    // ---- 3. featurization ----
    let components = if config.variant.uses_partitioning() {
        Some(build_components(constraints, violations, ds.tuple_count()))
    } else {
        None
    };
    let dc_featurizer = if config.variant.uses_dc_features() {
        Some(DcFeaturizer::new(ds, constraints, config))
    } else {
        None
    };
    let source_featurizer = match &config.source {
        Some(sc) => Some(SourceFeaturizer::new(ds, &sc.entity_attr, &sc.source_attr)?),
        None => None,
    };

    let all_vars: Vec<(CellRef, VarId)> = query_cells
        .iter()
        .copied()
        .zip(query_vars.iter().copied())
        .chain(evidence_vars.iter().copied())
        .collect();
    // Featurization is the compile hot path: every signal of every
    // variable scans conditioning cells, match lookups and DC partner
    // blocks. Each variable's features depend only on read-only inputs, so
    // the collection phase runs data-parallel into per-variable
    // [`FeatureBuffer`]s; the buffers then apply sequentially in variable
    // order, which replays the exact registry interning sequence of the
    // sequential compiler (same weight ids at every thread count).
    let buffers = holo_parallel::parallel_map(threads, &all_vars, |_, &(cell, var)| {
        let candidates = &graph.var(var).domain;
        let mut buf = FeatureBuffer::default();
        collect_cell_features(
            &mut buf,
            ds,
            stats,
            matches,
            config,
            dc_featurizer.as_ref(),
            source_featurizer.as_ref(),
            cell,
            candidates,
        );
        buf
    });
    for (&(_, var), buf) in all_vars.iter().zip(buffers) {
        buf.apply(&mut graph, &mut registry, var);
    }

    // ---- 4. DC factor grounding (Algorithm 1) ----
    if config.variant.uses_dc_factors() {
        ground_dc_factors(
            &mut graph,
            &mut registry,
            ds,
            constraints,
            &domains,
            &cell_vars,
            config,
            components.as_deref(),
            &mut cstats,
        );
    }

    // Compile hands the model over in its scoring form: force the CSR
    // design-matrix build here so Learn and Infer read a ready substrate
    // and the conversion cost is billed to the Compile stage. This is the
    // model's *only* full build — it absorbs the dirty set the mutators
    // above accumulated, and later mutations (feedback pins) patch the
    // matrix in place (`graph.design_stats()` keeps the tally).
    let _ = graph.design();
    debug_assert_eq!(graph.design_stats().full_builds, 1);

    cstats.factors = graph.factor_count();
    let weights = registry.build_weights();
    Ok(CompiledModel {
        graph,
        weights,
        registry,
        query_cells,
        query_vars,
        stats: cstats,
    })
}

/// Canonical evidence selection: per attribute, the clean non-null cells
/// of the *whole* dataset, downsampled to
/// [`HoloConfig::max_evidence_per_attr`] by a seeded shuffle (then
/// re-sorted). Shared verbatim by the one-shot compiler and the
/// streaming engine's per-batch recompile — membership must be a
/// function of `(dataset, noisy set, seed)` only, never of arrival
/// order, or the streaming-equals-batch byte equivalence breaks.
pub(crate) fn select_evidence_cells(
    ds: &Dataset,
    noisy: &FxHashSet<CellRef>,
    config: &HoloConfig,
) -> Vec<CellRef> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut selected: Vec<CellRef> = Vec::new();
    for attr in ds.schema().attrs() {
        let mut clean: Vec<CellRef> = ds
            .tuples()
            .map(|t| CellRef { tuple: t, attr })
            .filter(|c| !noisy.contains(c) && !ds.cell_ref(*c).is_null())
            .collect();
        if clean.len() > config.max_evidence_per_attr {
            clean.shuffle(&mut rng);
            clean.truncate(config.max_evidence_per_attr);
            clean.sort_unstable();
        }
        selected.extend(clean);
    }
    selected
}

/// The full per-cell featurization sequence — every signal of §4.2 in
/// its canonical order. Shared verbatim by the one-shot compiler and the
/// streaming engine (which passes an empty match lookup and no source
/// featurizer): the collect order *is* the per-row feature order in the
/// design matrix, so the two paths must never diverge.
///
/// Partitioning (Alg. 3) restricts the *factor grounding* of Algorithm 1
/// only; the relaxed features of §5.2 always count against all partners
/// — dropping out-of-component partners would silence the violations a
/// bad repair would create with clean tuples.
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect_cell_features(
    buf: &mut FeatureBuffer,
    ds: &Dataset,
    stats: &CooccurStats,
    matches: &MatchLookup,
    config: &HoloConfig,
    dc_featurizer: Option<&DcFeaturizer<'_>>,
    source_featurizer: Option<&SourceFeaturizer>,
    cell: CellRef,
    candidates: &[Sym],
) {
    let init = ds.cell_ref(cell);
    collect_cooccur_features(buf, ds, cell, candidates);
    collect_distribution_feature(
        buf,
        ds,
        stats,
        cell,
        candidates,
        config.min_cond_support,
        config.distribution_prior,
    );
    collect_minimality_feature(buf, config, init, candidates);
    collect_external_features(buf, matches, cell, candidates, config.ext_dict_prior);
    if let Some(dcf) = dc_featurizer {
        dcf.collect_features(buf, cell, candidates, None);
    }
    if let Some(sf) = source_featurizer {
        sf.collect_features(buf, ds, cell, candidates);
    }
}

/// Per-constraint tuple→component maps from the Algorithm 3 groups.
pub fn build_components(
    constraints: &ConstraintSet,
    violations: &[Violation],
    tuple_count: usize,
) -> Vec<FxHashMap<TupleId, u32>> {
    let hypergraph = ConflictHypergraph::build(violations.to_vec());
    let groups = hypergraph.tuple_groups(tuple_count);
    let mut maps: Vec<FxHashMap<TupleId, u32>> = vec![FxHashMap::default(); constraints.len()];
    let mut next_id: Vec<u32> = vec![0; constraints.len()];
    for (sigma, tuples) in &groups.groups {
        let id = next_id[*sigma];
        next_id[*sigma] += 1;
        for &t in tuples {
            maps[*sigma].insert(t, id);
        }
    }
    maps
}

fn op_to_cmp(op: Op) -> CmpOp {
    match op {
        Op::Eq => CmpOp::Eq,
        Op::Neq => CmpOp::Neq,
        Op::Lt => CmpOp::Lt,
        Op::Gt => CmpOp::Gt,
        Op::Leq => CmpOp::Leq,
        Op::Geq => CmpOp::Geq,
        Op::Sim(t) => CmpOp::Sim(t),
    }
}

/// Candidate domain of a cell: the pruned domain for noisy cells, the
/// observed singleton otherwise.
fn dom_of<'a>(
    ds: &Dataset,
    domains: &'a CellDomains,
    cell: CellRef,
    singleton: &'a mut [Sym; 1],
) -> &'a [Sym] {
    let d = domains.get(cell);
    if !d.is_empty() {
        return d;
    }
    singleton[0] = ds.cell_ref(cell);
    singleton
}

/// Tuple pairs per parallel clique-construction block: large enough that a
/// block amortises the fan-out, small enough that a binding
/// [`HoloConfig::max_cliques_per_constraint`] cap doesn't build far past
/// its stopping point.
const GROUND_BLOCK_PAIRS: usize = 4096;

/// Grounds denial constraints into clique factors over the query variables
/// (Algorithm 1). Pairs are discovered by blocking on the first cross-tuple
/// equality predicate *over candidate domains* — a pair is grounded iff some
/// candidate assignment can satisfy the equality join at all.
///
/// Both phases are data-parallel with ordered merges: pair discovery shards
/// the probe tuples (each probe tuple's bucket scan is pure; per-tuple pair
/// lists concatenate in tuple order), and clique construction shards the
/// pair list in fixed blocks (cliques append in pair order) — so the
/// grounded graph is identical at every thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ground_dc_factors(
    graph: &mut FactorGraph,
    registry: &mut FeatureRegistry<FeatureKey>,
    ds: &Dataset,
    constraints: &ConstraintSet,
    domains: &CellDomains,
    cell_vars: &FxHashMap<CellRef, VarId>,
    config: &HoloConfig,
    components: Option<&[FxHashMap<TupleId, u32>]>,
    cstats: &mut CompileStats,
) {
    let threads = config.effective_threads();
    let weight = registry.fixed(FeatureKey::DcFactor, config.dc_factor_weight);
    for (sigma, c) in constraints.iter() {
        if !c.two_tuple {
            ground_single_tuple(graph, ds, c, cell_vars, weight, threads);
            continue;
        }
        // Cross-tuple equality predicates, oriented (t1 attr, t2 attr).
        let eq_pairs: Vec<(AttrId, AttrId)> = c
            .predicates
            .iter()
            .filter(|p| p.is_cross_tuple_eq())
            .map(|p| {
                let rhs_attr = match p.rhs {
                    Operand::Cell(_, a) => a,
                    Operand::Const(_) => unreachable!(),
                };
                match p.lhs_tuple {
                    TupleVar::T1 => (p.lhs_attr, rhs_attr),
                    TupleVar::T2 => (rhs_attr, p.lhs_attr),
                }
            })
            .collect();
        if eq_pairs.is_empty() {
            // No join key: grounding would be O(|D|²) with no pruning.
            // Such constraints are not present in any evaluated workload;
            // skip with a note in the stats.
            cstats.clique_cap_hits += 1;
            continue;
        }
        let symmetric = c.is_symmetric();
        let (block_a1, block_a2) = eq_pairs[0];

        // value → tuples whose (t, block_a2) domain contains it.
        let mut buckets: FxHashMap<Sym, Vec<TupleId>> = FxHashMap::default();
        let mut singleton = [Sym::NULL];
        for t in ds.tuples() {
            let cell = CellRef {
                tuple: t,
                attr: block_a2,
            };
            for &v in dom_of(ds, domains, cell, &mut singleton) {
                if !v.is_null() {
                    buckets.entry(v).or_default().push(t);
                }
            }
        }

        let component = components.map(|m| &m[sigma]);

        // Phase 1 — pair discovery. Each probe tuple's candidate/bucket
        // scan is pure (a pair is keyed by its probe tuple, so dedup is
        // local to t1); shard probe tuples and concatenate the per-tuple
        // pair lists in tuple order, replaying the sequential discovery
        // order exactly.
        let tuples: Vec<TupleId> = ds.tuples().collect();
        let pairs: Vec<(TupleId, TupleId)> =
            holo_parallel::parallel_flat_map(threads, &tuples, |_, &t1| {
                let t1_comp = component.and_then(|m| m.get(&t1).copied());
                if component.is_some() && t1_comp.is_none() {
                    return Vec::new();
                }
                let cell1 = CellRef {
                    tuple: t1,
                    attr: block_a1,
                };
                let mut singleton1 = [Sym::NULL];
                let mut seen: FxHashSet<TupleId> = FxHashSet::default();
                let mut found = Vec::new();
                for &v in dom_of(ds, domains, cell1, &mut singleton1) {
                    if v.is_null() {
                        continue;
                    }
                    let Some(bucket) = buckets.get(&v) else {
                        continue;
                    };
                    for &t2 in bucket {
                        if t1 == t2 || (symmetric && t1 >= t2) {
                            continue;
                        }
                        if let (Some(tc), Some(m)) = (t1_comp, component) {
                            if m.get(&t2) != Some(&tc) {
                                continue;
                            }
                        }
                        if seen.insert(t2) {
                            found.push((t1, t2));
                        }
                    }
                }
                found
            });

        // Phase 2 — clique construction (the expensive part of Algorithm
        // 1) in parallel over fixed pair blocks; results append in pair
        // order. The per-constraint cap is applied during the ordered
        // append and stops the constraint outright once hit. (The
        // pre-refactor loop only skipped to the next probe tuple on a cap
        // hit, leaking roughly one clique per remaining tuple past the
        // "cap" — the hard stop is the documented intent.)
        let mut cliques_here = 0usize;
        'blocks: for block in pairs.chunks(GROUND_BLOCK_PAIRS) {
            let built = holo_parallel::parallel_map(threads, block, |_, &(t1, t2)| {
                build_clique(ds, c, t1, t2, domains, cell_vars, weight, &eq_pairs)
            });
            for clique in built {
                cstats.dc_pairs_considered += 1;
                let Some(clique) = clique else { continue };
                graph.add_clique(clique);
                cliques_here += 1;
                cstats.cliques += 1;
                if cliques_here >= config.max_cliques_per_constraint {
                    cstats.clique_cap_hits += 1;
                    break 'blocks;
                }
            }
        }
    }
}

/// Grounds single-tuple constraints: one clique per tuple whose involved
/// cells include at least one query variable. Clique construction per
/// tuple is pure, so tuples shard across threads and the cliques append
/// in tuple order.
fn ground_single_tuple(
    graph: &mut FactorGraph,
    ds: &Dataset,
    c: &holo_constraints::DenialConstraint,
    cell_vars: &FxHashMap<CellRef, VarId>,
    weight: holo_factor::WeightId,
    threads: usize,
) {
    let tuples: Vec<TupleId> = ds.tuples().collect();
    let built = holo_parallel::parallel_map(threads, &tuples, |_, &t| {
        let mut vars: Vec<VarId> = Vec::new();
        let slot_of = |cell: CellRef, vars: &mut Vec<VarId>| -> Option<u8> {
            let var = cell_vars.get(&cell)?;
            if let Some(pos) = vars.iter().position(|v| v == var) {
                return Some(pos as u8);
            }
            vars.push(*var);
            Some((vars.len() - 1) as u8)
        };
        let mut predicates = Vec::with_capacity(c.predicates.len());
        for p in &c.predicates {
            let lhs_cell = CellRef {
                tuple: t,
                attr: p.lhs_attr,
            };
            let lhs = match slot_of(lhs_cell, &mut vars) {
                Some(slot) => FactorOperand::Var(slot),
                None => FactorOperand::Const(ds.cell_ref(lhs_cell)),
            };
            let rhs = match p.rhs {
                Operand::Cell(_, a) => {
                    let cell = CellRef { tuple: t, attr: a };
                    match slot_of(cell, &mut vars) {
                        Some(slot) => FactorOperand::Var(slot),
                        None => FactorOperand::Const(ds.cell_ref(cell)),
                    }
                }
                Operand::Const(sym) => FactorOperand::Const(sym),
            };
            predicates.push(FactorPredicate {
                lhs,
                op: op_to_cmp(p.op),
                rhs,
            });
        }
        if vars.is_empty() {
            return None;
        }
        Some(CliqueFactor {
            vars,
            weight,
            predicates,
        })
    });
    for clique in built.into_iter().flatten() {
        graph.add_clique(clique);
    }
}

/// Materialises the clique for one tuple pair, or `None` when no query
/// variable participates (the factor would be constant) or the equality
/// join is domain-infeasible.
#[allow(clippy::too_many_arguments)]
fn build_clique(
    ds: &Dataset,
    c: &holo_constraints::DenialConstraint,
    t1: TupleId,
    t2: TupleId,
    domains: &CellDomains,
    cell_vars: &FxHashMap<CellRef, VarId>,
    weight: holo_factor::WeightId,
    eq_pairs: &[(AttrId, AttrId)],
) -> Option<CliqueFactor> {
    // Remaining equality joins must be domain-feasible.
    for &(a1, a2) in eq_pairs.iter().skip(1) {
        let c1 = CellRef {
            tuple: t1,
            attr: a1,
        };
        let c2 = CellRef {
            tuple: t2,
            attr: a2,
        };
        let mut s1 = [Sym::NULL];
        let mut s2 = [Sym::NULL];
        let d1 = dom_of(ds, domains, c1, &mut s1);
        let d2 = dom_of(ds, domains, c2, &mut s2);
        if !d1.iter().any(|v| d2.contains(v)) {
            return None;
        }
    }

    let mut vars: Vec<VarId> = Vec::new();
    let operand_of = |tv: TupleVar, attr: AttrId, vars: &mut Vec<VarId>| -> FactorOperand {
        let tuple = match tv {
            TupleVar::T1 => t1,
            TupleVar::T2 => t2,
        };
        let cell = CellRef { tuple, attr };
        match cell_vars.get(&cell) {
            Some(&var) => {
                let slot = match vars.iter().position(|&v| v == var) {
                    Some(pos) => pos as u8,
                    None => {
                        vars.push(var);
                        (vars.len() - 1) as u8
                    }
                };
                FactorOperand::Var(slot)
            }
            None => FactorOperand::Const(ds.cell_ref(cell)),
        }
    };
    let mut predicates = Vec::with_capacity(c.predicates.len());
    for p in &c.predicates {
        let lhs = operand_of(p.lhs_tuple, p.lhs_attr, &mut vars);
        let rhs = match p.rhs {
            Operand::Cell(tv, a) => operand_of(tv, a, &mut vars),
            Operand::Const(sym) => FactorOperand::Const(sym),
        };
        predicates.push(FactorPredicate {
            lhs,
            op: op_to_cmp(p.op),
            rhs,
        });
    }
    if vars.is_empty() {
        return None;
    }
    Some(CliqueFactor {
        vars,
        weight,
        predicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use holo_constraints::{find_violations, parse_constraints};

    fn setup(variant: ModelVariant) -> (Dataset, ConstraintSet, HoloConfig) {
        let mut ds = Dataset::new(holo_dataset::Schema::new(vec!["Zip", "City"]));
        for _ in 0..6 {
            ds.push_row(&["60608", "Chicago"]);
        }
        ds.push_row(&["60608", "Cicago"]);
        ds.push_row(&["60609", "Evanston"]);
        // Clean ambiguity: Oak Park legitimately spans two zips, so its
        // clean Zip cells have multi-candidate domains → evidence for SGD.
        ds.push_row(&["60610", "Oak Park"]);
        ds.push_row(&["60611", "Oak Park"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let config = HoloConfig::default().with_variant(variant).with_tau(0.3);
        (ds, cons, config)
    }

    fn run_compile(ds: &Dataset, cons: &ConstraintSet, config: &HoloConfig) -> CompiledModel {
        let violations = find_violations(ds, cons);
        let mut noisy: FxHashSet<CellRef> = FxHashSet::default();
        for v in &violations {
            noisy.extend(v.cells.iter().copied());
        }
        let stats = CooccurStats::build(ds);
        let matches = MatchLookup::default();
        compile(&CompileInput {
            ds,
            constraints: cons,
            noisy: &noisy,
            violations: &violations,
            stats: &stats,
            matches: &matches,
            config,
        })
        .unwrap()
    }

    #[test]
    fn dcfeats_compiles_independent_model() {
        let (ds, cons, config) = setup(ModelVariant::DcFeats);
        let model = run_compile(&ds, &cons, &config);
        assert!(!model.graph.has_cliques(), "relaxed model has no cliques");
        assert!(model.stats.query_vars > 0);
        assert!(model.stats.evidence_vars > 0);
        assert!(model.stats.factors > 0);
        // Query cells all carry ≥ 2 candidates.
        for &v in &model.query_vars {
            assert!(model.graph.var(v).arity() >= 2);
        }
    }

    #[test]
    fn dcfactors_grounds_cliques() {
        let (ds, cons, config) = setup(ModelVariant::DcFactors);
        let model = run_compile(&ds, &cons, &config);
        assert!(model.graph.has_cliques());
        assert!(model.stats.cliques > 0);
        assert!(model.stats.dc_pairs_considered >= model.stats.cliques);
    }

    #[test]
    fn partitioning_grounds_no_more_than_unpartitioned() {
        let (ds, cons, config) = setup(ModelVariant::DcFactors);
        let unpart = run_compile(&ds, &cons, &config);
        let config_p = config.with_variant(ModelVariant::DcFactorsPartitioned);
        let part = run_compile(&ds, &cons, &config_p);
        assert!(part.stats.cliques <= unpart.stats.cliques);
        assert!(part.stats.dc_pairs_considered <= unpart.stats.dc_pairs_considered);
    }

    /// The clique cap is a hard stop: a constraint grounds exactly
    /// `max_cliques_per_constraint` cliques and records the hit.
    #[test]
    fn clique_cap_stops_grounding() {
        let (ds, cons, mut config) = setup(ModelVariant::DcFactors);
        config.max_cliques_per_constraint = 3;
        let model = run_compile(&ds, &cons, &config);
        assert_eq!(model.stats.cliques, 3);
        assert!(model.stats.clique_cap_hits >= 1);
        assert!(model.graph.cliques().len() == 3);
    }

    #[test]
    fn singleton_domains_are_skipped() {
        // τ = 0.99 prunes everything except the initial value.
        let (ds, cons, config) = setup(ModelVariant::DcFeats);
        let config = config.with_tau(0.99);
        let model = run_compile(&ds, &cons, &config);
        assert!(model.stats.singleton_noisy_cells > 0);
        // Remaining query vars (if any) still have proper domains.
        for &v in &model.query_vars {
            assert!(model.graph.var(v).arity() >= 2);
        }
    }

    #[test]
    fn dictionary_assertions_extend_domains() {
        let (ds, cons, config) = setup(ModelVariant::DcFeats);
        let violations = find_violations(&ds, &cons);
        let mut noisy: FxHashSet<CellRef> = FxHashSet::default();
        for v in &violations {
            noisy.extend(v.cells.iter().copied());
        }
        let stats = CooccurStats::build(&ds);
        // Assert an out-of-domain value for a noisy cell.
        let mut ds2 = ds.clone();
        let exotic = ds2.intern("Berwyn");
        let city = ds2.schema().attr_id("City").unwrap();
        let cell = *noisy.iter().find(|c| c.attr == city).unwrap();
        let mut matches = MatchLookup::default();
        matches.insert((cell, exotic), vec![0]);
        let model = compile(&CompileInput {
            ds: &ds2,
            constraints: &cons,
            noisy: &noisy,
            violations: &violations,
            stats: &stats,
            matches: &matches,
            config: &config,
        })
        .unwrap();
        let var = model
            .query_cells
            .iter()
            .position(|&c| c == cell)
            .map(|i| model.query_vars[i])
            .unwrap();
        assert!(model.graph.var(var).domain.contains(&exotic));
    }

    #[test]
    fn evidence_sampling_respects_cap() {
        let (ds, cons, mut config) = setup(ModelVariant::DcFeats);
        config.max_evidence_per_attr = 2;
        let model = run_compile(&ds, &cons, &config);
        // ≤ 2 evidence vars per attribute (2 attrs → ≤ 4), minus singletons.
        assert!(model.stats.evidence_vars <= 4);
    }

    #[test]
    fn compile_deterministic_under_seed() {
        let (ds, cons, config) = setup(ModelVariant::DcFeats);
        let m1 = run_compile(&ds, &cons, &config);
        let m2 = run_compile(&ds, &cons, &config);
        assert_eq!(m1.stats.query_vars, m2.stats.query_vars);
        assert_eq!(m1.stats.evidence_vars, m2.stats.evidence_vars);
        assert_eq!(m1.stats.factors, m2.stats.factors);
        assert_eq!(m1.query_cells, m2.query_cells);
    }
}
