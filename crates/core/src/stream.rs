//! Streaming ingestion: the one-shot pipeline as an **incremental
//! engine** with batch-equivalent repairs.
//!
//! The paper specifies HoloClean as compile-then-infer over a frozen
//! dataset; a production service ingests tuples continuously. PClean
//! (arXiv 2007.11838) and the PUD framework (arXiv 1801.06750) both argue
//! the resolution: keep **one** probabilistic model alive and *condition
//! it on growing evidence*, recomputing only the part of the model a new
//! record touches. [`StreamSession`] is that engine, built on the
//! incremental substrates of the earlier refactors — the in-place
//! [`holo_factor::DesignMatrix`] patching, the in-place
//! [`holo_factor::ComponentIndex`] maintenance, and partitioned
//! inference.
//!
//! ## Per-batch dataflow ([`StreamSession::push_batch`])
//!
//! 1. **Append** — rows join the dataset with stable `TupleId`s;
//!    co-occurrence statistics fold in the batch incrementally
//!    (`CooccurStats::extend_with_threads`, `O(batch · |A|²)`).
//! 2. **Delta detect** — a persistent blocking index
//!    ([`holo_constraints::DeltaViolationIndex`]) is probed with *only
//!    the new tuples, in both join directions*; the per-batch violations
//!    union to exactly the one-shot violation set.
//! 3. **Delta compile** — an *affected set* of old tuples is derived from
//!    value postings (same-column sharing moves co-occurrence counts;
//!    join-key postings over stored values **and** domain candidates move
//!    relaxed-DC partner counts). Domains and features are recomputed
//!    only for cells of affected tuples (plus the batch itself); every
//!    other cell reuses its cached compile verbatim. Changes funnel
//!    through the [`holo_factor::FactorGraph`] mutators, so the design
//!    matrix and component index **patch in place** — after the first
//!    batch their `full_builds` counters stay at 1 for the life of the
//!    stream (test-pinned).
//! 4. **Warm-start learning** — when
//!    [`crate::config::StreamConfig::refine_each_batch`] is on, SGD
//!    resumes from the
//!    current weights over a replay window biased to the new evidence
//!    ([`holo_factor::learn::train_replay`]) so interim posteriors stay
//!    fresh at `O(window)` per batch.
//! 5. **Re-inference** — restricted to the query-bearing components via
//!    [`holo_factor::infer_partitioned`], on demand.
//!
//! ## The equivalence contract
//!
//! [`StreamSession::report`] is **batch-equivalent**: feeding a dataset
//! in any number of batches, at any thread count, produces repairs and
//! posteriors *byte-identical* to the one-shot [`crate::HoloClean`] run
//! over the final dataset. Three mechanisms carry the guarantee:
//!
//! * the affected-set recomputation is a sound over-approximation, so a
//!   cell's cached domain/features are reused only when a fresh compile
//!   would reproduce them exactly;
//! * everything order-sensitive is order-canonical: evidence is
//!   re-selected per batch by replaying the compiler's seeded sampling
//!   over the full dataset, SGD visits examples through
//!   [`holo_factor::learn::train_examples`] in the canonical
//!   (attribute-major, cell-sorted) order rather than graph insertion
//!   order, and domain ties break on value *strings* (interning order
//!   differs between the streaming and one-shot loaders);
//! * batch-equivalent reads run a **canonical retrain** — full SGD from
//!   the priors over the canonical example order — because an SGD
//!   endpoint is a function of its whole trajectory, so no warm-started
//!   shortcut can be bitwise-faithful. The model is never recompiled for
//!   it: the retrain reads the patched design matrix.
//!
//! Retired variables (a cell whose domain changed, an evidence cell that
//! fell out of the replay sample) are *pinned* in place — pinning keeps
//! the design matrix and component index valid without a rebuild — and
//! excluded from the canonical example and query lists, so they are
//! invisible to learning, inference, and reports.
//!
//! ## Scope
//!
//! The streaming engine serves the **relaxed §5.2 model**
//! ([`crate::ModelVariant::DcFeats`], the default and the paper's own
//! recommendation at scale): denial constraints enter as learned
//! per-constraint violation features, inference is closed-form per
//! component. Variants that ground DC clique factors couple variables
//! across tuples in ways in-place patching cannot yet retire
//! ([`StreamSession::new`] rejects them), as do source-reliability
//! features and external dictionaries.

use crate::compile::{collect_cell_features, select_evidence_cells, CompileStats};
use crate::config::HoloConfig;
use crate::context::DatasetContext;
use crate::error::HoloError;
use crate::features::{DcFeaturizer, FeatureBuffer, FeatureKey, MatchLookup};
use crate::pipeline::{StageKind, StageTimings};
use crate::repair::RepairReport;
use holo_constraints::{parse_constraints, ConstraintSet, DeltaViolationIndex, Violation};
use holo_dataset::{
    AttrId, CellRef, CooccurStats, Dataset, FxHashMap, FxHashSet, Schema, Sym, TupleId,
};
use holo_factor::{
    infer_partitioned, learn, FactorGraph, FeatureRegistry, LearnStats, Marginals, PartitionStats,
    PartitionedConfig, VarId, Variable, Weights,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Cumulative streaming counters, riding in [`StageTimings::ingest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Batches ingested.
    pub batches: u64,
    /// Tuples ingested.
    pub tuples: u64,
    /// Violations found by delta detection (== one-shot total, by the
    /// delta-index contract).
    pub delta_violations: u64,
    /// Old tuples pulled into recompilation by the affected-set analysis.
    pub affected_tuples: u64,
    /// Cells whose domain/features were recomputed.
    pub cells_recomputed: u64,
    /// Cells that reused their cached compile verbatim.
    pub cells_reused: u64,
    /// Variables appended to the live graph (patching the design matrix
    /// and component index in place).
    pub vars_added: u64,
    /// Variables retired (pinned out of the model, or dropped from the
    /// evidence sample).
    pub vars_retired: u64,
    /// Minibatches executed by warm-start replay passes.
    pub replay_minibatches: u64,
    /// Canonical from-priors retrains executed for batch-equivalent reads.
    pub canonical_retrains: u64,
}

/// What one [`StreamSession::push_batch`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Rows appended.
    pub appended: usize,
    /// Violations the batch introduced.
    pub new_violations: usize,
    /// Old tuples whose cells needed recompilation.
    pub affected_tuples: usize,
    /// Cells recomputed (batch cells + affected-tuple cells).
    pub cells_recomputed: usize,
    /// Cells served from the compile cache.
    pub cells_reused: usize,
    /// Variables appended to the live graph.
    pub vars_added: usize,
    /// Variables retired.
    pub vars_retired: usize,
}

/// Cached compile state of one live cell.
struct CellState {
    /// The live variable, if the cell has ≥ 2 candidates.
    var: Option<VarId>,
    /// Query (noisy) vs evidence role.
    query: bool,
    /// Pruned candidate domain (Algorithm 2 order).
    domain: Vec<Sym>,
    /// Collected features (empty for var-less singleton cells).
    features: FeatureBuffer,
}

/// The incremental repair engine. See the module docs for the dataflow
/// and the equivalence contract.
///
/// ```
/// use holo_dataset::Schema;
/// use holoclean::stream::StreamSession;
/// use holoclean::HoloConfig;
///
/// let mut session = StreamSession::new(
///     Schema::new(vec!["Zip", "City"]),
///     "FD: Zip -> City",
///     HoloConfig::default(),
/// ).unwrap();
/// let rows: Vec<Vec<String>> = (0..8)
///     .map(|_| vec!["60608".into(), "Chicago".into()])
///     .collect();
/// session.push_batch(&rows).unwrap();
/// session.push_batch(&[vec!["60608".to_string(), "Cicago".to_string()]]).unwrap();
/// let report = session.report();
/// assert_eq!(report.repairs.len(), 1);
/// assert_eq!(report.repairs[0].new_value, "Chicago");
/// ```
pub struct StreamSession {
    ds: Dataset,
    constraints: ConstraintSet,
    config: HoloConfig,
    /// Persistent violation blocking index (forward + backward).
    delta_index: DeltaViolationIndex,
    /// Incrementally-maintained co-occurrence statistics.
    stats: CooccurStats,
    /// `(attr, stored value) → tuples`, for the affected-set analysis.
    postings: FxHashMap<(AttrId, Sym), Vec<TupleId>>,
    /// `(join-key attr, domain candidate) → tuples`: cells on join-key
    /// attributes depend on partner buckets of *every* candidate, not
    /// just the stored value.
    cand_postings: FxHashMap<(AttrId, Sym), FxHashSet<TupleId>>,
    /// Attributes participating in some cross-tuple equality predicate,
    /// as `(t1-side, t2-side)` pairs.
    eq_pairs: Vec<(AttrId, AttrId)>,
    /// Some two-tuple constraint has no equality join key: its relaxed
    /// features couple every tuple to every tuple, so every batch
    /// invalidates everything.
    global_coupling: bool,
    violations: usize,
    noisy: FxHashSet<CellRef>,
    graph: FactorGraph,
    registry: FeatureRegistry<FeatureKey>,
    cell_states: FxHashMap<CellRef, CellState>,
    /// Live query cells/vars, sorted by cell — the report order.
    query_cells: Vec<CellRef>,
    query_vars: Vec<VarId>,
    /// Live evidence vars in canonical (attribute-major, cell-sorted
    /// selection) order — the SGD example order.
    examples: Vec<VarId>,
    /// Evidence vars split as (reused, fresh-this-batch) for replay.
    replay_order: Vec<VarId>,
    fresh_examples: usize,
    weights: Weights,
    /// Whether `weights` came from a canonical retrain of the current
    /// model (vs a warm replay or a stale batch).
    weights_exact: bool,
    marginals: Option<Marginals>,
    compile_stats: CompileStats,
    learn_stats: Option<LearnStats>,
    partition_stats: Option<PartitionStats>,
    timings: StageTimings,
}

impl StreamSession {
    /// Opens a session over `schema` with constraints parsed from
    /// `text` (DC lines and/or `FD:` sugar). The dataset starts empty;
    /// feed rows with [`StreamSession::push_batch`].
    pub fn new(schema: Schema, text: &str, config: HoloConfig) -> Result<Self, HoloError> {
        let mut ds = Dataset::new(schema);
        let parsed = parse_constraints(text, &mut ds)?;
        let mut constraints = ConstraintSet::new();
        for (_, c) in parsed.iter() {
            constraints.push(c.clone());
        }
        Self::with_constraints(ds, constraints, config)
    }

    /// Opens a session over an **empty** dataset (used for its schema and
    /// value pool — constraint constants are already interned) and an
    /// already-bound constraint set.
    pub fn with_constraints(
        ds: Dataset,
        constraints: ConstraintSet,
        config: HoloConfig,
    ) -> Result<Self, HoloError> {
        if ds.tuple_count() != 0 {
            return Err(HoloError::Stream(
                "streaming sessions start from an empty dataset; feed rows via push_batch".into(),
            ));
        }
        if config.variant.uses_dc_factors() || config.variant.uses_partitioning() {
            return Err(HoloError::Stream(format!(
                "streaming serves the relaxed §5.2 model (DcFeats); variant {:?} grounds DC \
                 clique factors, which in-place patching cannot retire",
                config.variant
            )));
        }
        if config.source.is_some() {
            return Err(HoloError::Stream(
                "source-reliability features are not supported by the streaming engine".into(),
            ));
        }
        let mut eq_pairs: Vec<(AttrId, AttrId)> = Vec::new();
        let mut global_coupling = false;
        for (_, c) in constraints.iter() {
            if !c.two_tuple {
                continue;
            }
            let mut found = false;
            for p in &c.predicates {
                if !p.is_cross_tuple_eq() {
                    continue;
                }
                found = true;
                let rhs_attr = match p.rhs {
                    holo_constraints::Operand::Cell(_, a) => a,
                    holo_constraints::Operand::Const(_) => continue,
                };
                let pair = match p.lhs_tuple {
                    holo_constraints::TupleVar::T1 => (p.lhs_attr, rhs_attr),
                    holo_constraints::TupleVar::T2 => (rhs_attr, p.lhs_attr),
                };
                if !eq_pairs.contains(&pair) {
                    eq_pairs.push(pair);
                }
            }
            global_coupling |= !found;
        }
        let delta_index = DeltaViolationIndex::new(&constraints);
        let stats = CooccurStats::build(&ds);
        Ok(StreamSession {
            ds,
            constraints,
            config,
            delta_index,
            stats,
            postings: FxHashMap::default(),
            cand_postings: FxHashMap::default(),
            eq_pairs,
            global_coupling,
            violations: 0,
            noisy: FxHashSet::default(),
            graph: FactorGraph::new(),
            registry: FeatureRegistry::new(),
            cell_states: FxHashMap::default(),
            query_cells: Vec::new(),
            query_vars: Vec::new(),
            examples: Vec::new(),
            replay_order: Vec::new(),
            fresh_examples: 0,
            weights: Weights::zeros(0),
            weights_exact: false,
            marginals: None,
            compile_stats: CompileStats::default(),
            learn_stats: None,
            partition_stats: None,
            timings: StageTimings::default(),
        })
    }

    /// Ingests one batch of raw rows: append → delta detect → delta
    /// compile → (optional) warm-start replay. Returns what the batch
    /// cost; batch-equivalent repairs are read with
    /// [`StreamSession::report`].
    pub fn push_batch<S: AsRef<str>>(&mut self, rows: &[Vec<S>]) -> Result<BatchReport, HoloError> {
        let arity = self.ds.schema().len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != arity {
                return Err(HoloError::Stream(format!(
                    "batch row {i} has {} values; the schema has {arity} attributes",
                    row.len()
                )));
            }
        }
        let threads = self.config.threads;
        let mut report = BatchReport {
            appended: rows.len(),
            ..BatchReport::default()
        };

        // ---- Append + incremental statistics + delta detection ----
        let t_detect = Instant::now();
        let from = self.ds.append_rows(rows);
        self.stats.extend_with_threads(&self.ds, from, threads);
        let new_violations = self
            .delta_index
            .ingest(&self.ds, &self.constraints, from, threads);
        for v in &new_violations {
            self.noisy.extend(v.cells.iter().copied());
        }
        self.violations += new_violations.len();
        report.new_violations = new_violations.len();
        self.timings.record(StageKind::Detect, t_detect.elapsed());

        // ---- Delta compile ----
        let t_compile = Instant::now();
        if self.config.stream.force_full_rebuild {
            self.graph.invalidate_design();
            self.graph.invalidate_components();
        }
        let affected = self.affected_tuples(from, &new_violations);
        report.affected_tuples = affected.len();
        // New tuples join the postings only now, so the affected-set scan
        // above saw exactly the pre-batch state.
        for t in from.index()..self.ds.tuple_count() {
            let t = TupleId(t as u32);
            for attr in self.ds.schema().attrs() {
                let v = self.ds.cell(t, attr);
                if !v.is_null() {
                    self.postings.entry((attr, v)).or_default().push(t);
                }
            }
        }
        self.recompile(&affected, from, &mut report)?;
        self.timings.record(StageKind::Compile, t_compile.elapsed());

        // ---- Warm-start replay (interim-freshness only) ----
        self.marginals = None;
        self.partition_stats = None;
        self.weights_exact = false;
        if self.config.stream.refine_each_batch {
            let t_learn = Instant::now();
            let mut w = self.registry.build_weights();
            w.adopt_learned(&self.weights);
            let recent = self
                .fresh_examples
                .min(self.config.stream.replay_window.max(1));
            let stats = learn::train_replay(
                &self.graph,
                &mut w,
                &self.config.learn,
                threads,
                &self.replay_order,
                recent,
                self.config.stream.replay_epochs,
            );
            self.timings.ingest.replay_minibatches += stats.minibatches as u64;
            self.weights = w;
            self.timings.record(StageKind::Learn, t_learn.elapsed());
        }

        let ingest = &mut self.timings.ingest;
        ingest.batches += 1;
        ingest.tuples += rows.len() as u64;
        ingest.delta_violations += report.new_violations as u64;
        ingest.affected_tuples += report.affected_tuples as u64;
        ingest.cells_recomputed += report.cells_recomputed as u64;
        ingest.cells_reused += report.cells_reused as u64;
        ingest.vars_added += report.vars_added as u64;
        ingest.vars_retired += report.vars_retired as u64;
        Ok(report)
    }

    /// Old tuples whose cells a fresh compile could score differently
    /// after this batch — a sound over-approximation (see module docs).
    fn affected_tuples(&self, from: TupleId, new_violations: &[Violation]) -> FxHashSet<TupleId> {
        let mut affected: FxHashSet<TupleId> = FxHashSet::default();
        if self.config.stream.force_full_rebuild || self.global_coupling {
            affected.extend((0..from.index()).map(|t| TupleId(t as u32)));
            return affected;
        }
        // Violations re-flag cells of old partner tuples (role changes).
        for v in new_violations {
            for cell in &v.cells {
                if cell.tuple < from {
                    affected.insert(cell.tuple);
                }
            }
        }
        let hit = |key: (AttrId, Sym), affected: &mut FxHashSet<TupleId>| {
            if let Some(ts) = self.postings.get(&key) {
                affected.extend(ts.iter().copied());
            }
            if let Some(ts) = self.cand_postings.get(&key) {
                affected.extend(ts.iter().copied());
            }
        };
        for t in from.index()..self.ds.tuple_count() {
            let t = TupleId(t as u32);
            for attr in self.ds.schema().attrs() {
                let v = self.ds.cell(t, attr);
                if v.is_null() {
                    continue;
                }
                // Same-column sharing moves frequency and co-occurrence
                // counts of every tuple holding `v` at `attr`.
                hit((attr, v), &mut affected);
                // Join-key sharing moves relaxed-DC partner counts: the
                // new tuple enters the partner bucket of any tuple whose
                // opposite-side key (stored or candidate) matches.
                for &(a1, a2) in &self.eq_pairs {
                    if a2 == attr {
                        hit((a1, v), &mut affected);
                    }
                    if a1 == attr {
                        hit((a2, v), &mut affected);
                    }
                }
            }
        }
        affected
    }

    /// Rebuilds the canonical model spec for the current dataset —
    /// recomputing only cells in or conflicting with the batch — and
    /// patches the live graph to match it.
    fn recompile(
        &mut self,
        affected: &FxHashSet<TupleId>,
        from: TupleId,
        report: &mut BatchReport,
    ) -> Result<(), HoloError> {
        let threads = self.config.threads;
        let config = &self.config;
        let ds = &self.ds;
        let stats = &self.stats;
        let dc_featurizer = config
            .variant
            .uses_dc_features()
            .then(|| DcFeaturizer::new(ds, &self.constraints, config));

        // ---- Canonical membership ----
        let mut noisy_cells: Vec<CellRef> = self.noisy.iter().copied().collect();
        noisy_cells.sort_unstable();
        // Evidence selection runs the one-shot compiler's *own* seeded
        // sampling (shared helper) over the full dataset — membership is
        // a function of (dataset, noisy set, seed), not of arrival order.
        let selected = select_evidence_cells(ds, &self.noisy, config);

        // ---- Recompute the cells a fresh compile could change ----
        let needs_recompute =
            |cell: &CellRef, query: bool, states: &FxHashMap<CellRef, CellState>| {
                cell.tuple >= from
                    || affected.contains(&cell.tuple)
                    || match states.get(cell) {
                        Some(st) => st.query != query,
                        None => true,
                    }
            };
        let evidence_tau = config.tau.min(config.evidence_tau_cap);
        let mut work: Vec<(CellRef, bool)> = Vec::new();
        for &cell in &noisy_cells {
            if needs_recompute(&cell, true, &self.cell_states) {
                work.push((cell, true));
            }
        }
        for &cell in &selected {
            if needs_recompute(&cell, false, &self.cell_states) {
                work.push((cell, false));
            }
        }
        // No dictionaries and no source features in streaming sessions:
        // the shared featurizer sees an empty lookup (grounds nothing),
        // exactly what the one-shot compiler produces without them.
        let no_matches = MatchLookup::default();
        let computed: Vec<(Vec<Sym>, FeatureBuffer)> =
            holo_parallel::parallel_map(threads, &work, |_, &(cell, query)| {
                let tau = if query { config.tau } else { evidence_tau };
                let domain = crate::domain::prune_cell_with_support(
                    ds,
                    cell,
                    stats,
                    tau,
                    config.max_domain,
                    config.min_cond_support,
                );
                let mut buf = FeatureBuffer::default();
                if domain.len() >= 2 {
                    collect_cell_features(
                        &mut buf,
                        ds,
                        stats,
                        &no_matches,
                        config,
                        dc_featurizer.as_ref(),
                        None,
                        cell,
                        &domain,
                    );
                }
                (domain, buf)
            });
        report.cells_recomputed = work.len();
        let mut fresh: FxHashMap<CellRef, (Vec<Sym>, FeatureBuffer)> =
            work.iter().map(|&(cell, _)| cell).zip(computed).collect();

        // ---- Diff against the live graph, in canonical order ----
        let mut cstats = CompileStats::default();
        self.query_cells.clear();
        self.query_vars.clear();
        self.examples.clear();
        let mut reused_examples: Vec<VarId> = Vec::new();
        let mut fresh_examples: Vec<VarId> = Vec::new();
        let mut live: FxHashSet<CellRef> = FxHashSet::with_capacity_and_hasher(
            noisy_cells.len() + selected.len(),
            Default::default(),
        );

        for &cell in &noisy_cells {
            live.insert(cell);
            let (var, _) = self.sync_cell(cell, true, fresh.remove(&cell), report)?;
            match var {
                Some(v) => {
                    self.query_cells.push(cell);
                    self.query_vars.push(v);
                    cstats.total_candidates += self.graph.var(v).arity();
                }
                None => cstats.singleton_noisy_cells += 1,
            }
        }
        for &cell in &selected {
            live.insert(cell);
            let (var, was_fresh) = self.sync_cell(cell, false, fresh.remove(&cell), report)?;
            if let Some(v) = var {
                self.examples.push(v);
                if was_fresh {
                    fresh_examples.push(v);
                } else {
                    reused_examples.push(v);
                }
            }
        }
        report.cells_reused = live.len() - report.cells_recomputed;

        // Drop states of cells that left the membership (evidence cells
        // the reshuffled sample no longer selects). Their variables stay
        // in the graph as inert evidence — removal would force a matrix
        // rebuild — but nothing reads them again unless the sample
        // re-selects the cell, which recompiles it afresh.
        self.cell_states.retain(|cell, st| {
            let keep = live.contains(cell);
            if !keep && st.var.is_some() {
                report.vars_retired += 1;
            }
            keep
        });

        // Replay order: surviving examples first, this batch's new
        // evidence last — `train_replay` biases its window to the tail.
        self.fresh_examples = fresh_examples.len();
        self.replay_order = reused_examples;
        self.replay_order.append(&mut fresh_examples);

        cstats.query_vars = self.query_vars.len();
        cstats.evidence_vars = self.examples.len();
        cstats.factors = self
            .cell_states
            .values()
            .filter(|st| st.var.is_some())
            .map(|st| st.features.len())
            .sum();
        self.compile_stats = cstats;

        // The first batch's forced builds — later batches find the caches
        // present and these calls are free reads.
        let _ = self.graph.design();
        let _ = self.graph.components();
        Ok(())
    }

    /// Brings one cell's live variable in line with its canonical compile
    /// state, reusing the cache when nothing changed. Returns the live
    /// variable (if the cell carries one) and whether it was (re)created.
    fn sync_cell(
        &mut self,
        cell: CellRef,
        query: bool,
        fresh: Option<(Vec<Sym>, FeatureBuffer)>,
        report: &mut BatchReport,
    ) -> Result<(Option<VarId>, bool), HoloError> {
        if let Some((domain, features)) = fresh {
            if let Some(st) = self.cell_states.get(&cell) {
                if st.query == query && st.domain == domain && st.features == features {
                    // Conservatively recomputed, but nothing changed.
                    return Ok((st.var, false));
                }
                // The cell's model changed: retire the old variable. A
                // query variable is pinned to its observed value so
                // inference skips it; an evidence variable is simply no
                // longer listed as an example.
                if let Some(v) = st.var {
                    if st.query {
                        let var = self.graph.var(v);
                        let k = var.init.unwrap_or(0);
                        let value = var.domain[k];
                        self.graph.pin_evidence(v, value);
                    }
                    report.vars_retired += 1;
                }
            }
            let var = if domain.len() >= 2 {
                let init_pos = domain.iter().position(|&d| d == self.ds.cell_ref(cell));
                let variable = if query {
                    Variable::query(domain.clone(), init_pos)
                } else {
                    let observed = init_pos.ok_or_else(|| HoloError::PrunedInitialValue {
                        cell,
                        attr: self.ds.schema().attr_name(cell.attr).to_string(),
                    })?;
                    Variable::evidence(domain.clone(), observed)
                };
                let rows = features.to_rows(&mut self.registry, domain.len());
                let v = self.graph.add_variable_with_features(variable, rows);
                report.vars_added += 1;
                // Candidate postings: cells on join-key attributes depend
                // on partner buckets of every candidate value.
                for &(a1, a2) in &self.eq_pairs {
                    if cell.attr == a1 || cell.attr == a2 {
                        for &d in &domain {
                            if !d.is_null() {
                                self.cand_postings
                                    .entry((cell.attr, d))
                                    .or_default()
                                    .insert(cell.tuple);
                            }
                        }
                    }
                }
                Some(v)
            } else {
                None
            };
            self.cell_states.insert(
                cell,
                CellState {
                    var,
                    query,
                    domain,
                    features,
                },
            );
            Ok((var, true))
        } else {
            // Untouched by the batch: serve the cache.
            let st = self
                .cell_states
                .get(&cell)
                .expect("cells outside the recompute set keep a cached state");
            debug_assert_eq!(st.query, query);
            Ok((st.var, false))
        }
    }

    /// Canonical retrain + re-inference, if anything is stale. This is
    /// the batch-equivalence workhorse: full SGD from the priors over the
    /// canonical example order (reading the *patched* design matrix — the
    /// model is never recompiled), then partitioned inference over the
    /// dirty components.
    fn ensure_exact(&mut self) {
        let threads = self.config.threads;
        if !self.weights_exact {
            let t_learn = Instant::now();
            let mut w = self.registry.build_weights();
            let stats = learn::train_examples(
                &self.graph,
                &mut w,
                &self.config.learn,
                threads,
                &self.examples,
            );
            self.learn_stats = (!self.examples.is_empty()).then_some(stats);
            self.weights = w;
            self.weights_exact = true;
            self.timings.ingest.canonical_retrains += 1;
            self.timings.record(StageKind::Learn, t_learn.elapsed());
            self.marginals = None;
        }
        if self.marginals.is_none() {
            let t_infer = Instant::now();
            let ctx = DatasetContext::new(&self.ds);
            let (marginals, partition) = infer_partitioned(
                &self.graph,
                &self.weights,
                &ctx,
                &PartitionedConfig {
                    gibbs: self.config.gibbs,
                    exact_limit: self.config.exact_component_limit,
                    chromatic: self.config.chromatic_gibbs,
                    score_cache: self.config.score_cache,
                },
                threads,
            );
            self.partition_stats = Some(partition);
            self.timings.partition = partition;
            self.marginals = Some(marginals);
            self.timings.record(StageKind::Infer, t_infer.elapsed());
        }
    }

    /// Batch-equivalent repairs and posteriors: byte-identical to a
    /// one-shot [`crate::HoloClean`] run over everything pushed so far,
    /// at any batch split and any thread count.
    pub fn report(&mut self) -> RepairReport {
        self.ensure_exact();
        RepairReport::from_marginals(
            &self.ds,
            &self.query_cells,
            &self.query_vars,
            &self.graph,
            self.marginals.as_ref().expect("ensure_exact filled it"),
        )
    }

    /// Interim repairs under the current (warm-started) weights — cheap,
    /// fresh after every batch when
    /// [`crate::config::StreamConfig::refine_each_batch`] is on, but
    /// *not* the batch-equivalent read.
    pub fn interim_report(&self) -> RepairReport {
        let ctx = DatasetContext::new(&self.ds);
        let mut weights = self.registry.build_weights();
        weights.adopt_learned(&self.weights);
        let (marginals, _) = infer_partitioned(
            &self.graph,
            &weights,
            &ctx,
            &PartitionedConfig {
                gibbs: self.config.gibbs,
                exact_limit: self.config.exact_component_limit,
                chromatic: self.config.chromatic_gibbs,
                score_cache: self.config.score_cache,
            },
            self.config.threads,
        );
        RepairReport::from_marginals(
            &self.ds,
            &self.query_cells,
            &self.query_vars,
            &self.graph,
            &marginals,
        )
    }

    /// The dataset as ingested so far.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Current weights (canonical after [`StreamSession::report`],
    /// warm-started between batches).
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The feature registry (introspection: mapping learned weights back
    /// to their structured keys, e.g. per-constraint DC weights).
    pub fn registry(&self) -> &FeatureRegistry<FeatureKey> {
        &self.registry
    }

    /// Total violations detected so far (== the one-shot count).
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Noisy cells detected so far.
    pub fn noisy_cells(&self) -> usize {
        self.noisy.len()
    }

    /// Shape of the live model (live variables only; retired ones are
    /// excluded).
    pub fn compile_stats(&self) -> &CompileStats {
        &self.compile_stats
    }

    /// Learning diagnostics of the last canonical retrain.
    pub fn learn_stats(&self) -> Option<&LearnStats> {
        self.learn_stats.as_ref()
    }

    /// Routing split of the last inference pass.
    pub fn partition_stats(&self) -> Option<PartitionStats> {
        self.partition_stats
    }

    /// Cumulative stage timings and ingest counters. Design-matrix and
    /// component-index counters are snapshotted from the live graph.
    pub fn timings(&self) -> StageTimings {
        let mut t = self.timings;
        t.design = self.graph.design_stats();
        t.components = self.graph.component_stats();
        t
    }

    /// Cumulative ingest counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.timings.ingest
    }

    /// Whether the live graph's patched design matrix and component index
    /// are bit-for-bit equal to fresh compiles of the current adjacency —
    /// the patch-path invariant, exposed for tests and diagnostics
    /// (`O(model)`; don't call it per batch in production).
    pub fn verify_patch_equivalence(&self) -> bool {
        self.graph.design() == &self.graph.compile_design()
            && self.graph.components() == &self.graph.compile_components()
    }

    /// Design-matrix build/patch counters of the live graph — pinned at
    /// one full build for the life of a (non-`force_full_rebuild`)
    /// stream.
    pub fn design_stats(&self) -> holo_factor::DesignStats {
        self.graph.design_stats()
    }

    /// Component-index build/patch counters of the live graph.
    pub fn component_stats(&self) -> holo_factor::ComponentStats {
        self.graph.component_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use crate::HoloClean;

    fn zip_city_rows() -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for _ in 0..8 {
            rows.push(vec!["60608".into(), "Chicago".into(), "IL".into()]);
        }
        rows.push(vec!["60608".into(), "Cicago".into(), "IL".into()]);
        for _ in 0..5 {
            rows.push(vec!["60609".into(), "Evanston".into(), "IL".into()]);
        }
        rows
    }

    fn one_shot(rows: &[Vec<String>], threads: usize) -> RepairReport {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
        for row in rows {
            ds.push_row(row);
        }
        HoloClean::new(ds)
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .with_config(HoloConfig::default().with_threads(threads))
            .run()
            .unwrap()
            .report
    }

    fn streamed(rows: &[Vec<String>], batches: usize, threads: usize) -> StreamSession {
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City", "State"]),
            "FD: Zip -> City",
            HoloConfig::default().with_threads(threads),
        )
        .unwrap();
        for chunk in rows.chunks(rows.len().div_ceil(batches)) {
            session.push_batch(chunk).unwrap();
        }
        session
    }

    #[test]
    fn any_batch_split_matches_the_one_shot_run_bitwise() {
        let rows = zip_city_rows();
        let reference = one_shot(&rows, 1);
        assert_eq!(reference.repairs.len(), 1);
        for batches in [1, 3, 7, rows.len()] {
            for threads in [1, 2] {
                let mut session = streamed(&rows, batches, threads);
                let report = session.report();
                assert_eq!(
                    report, reference,
                    "batches = {batches}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn incrementality_is_pinned_after_the_first_batch() {
        let rows = zip_city_rows();
        let mut session = streamed(&rows, 4, 1);
        let _ = session.report();
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.component_stats().full_builds, 1);
        let stats = session.ingest_stats();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.tuples as usize, rows.len());
        assert!(stats.vars_added > 0);
        assert_eq!(stats.canonical_retrains, 1);
        // More data arrives after a report: still no rebuild.
        session
            .push_batch(&[vec!["60609".to_string(), "Evanstn".into(), "IL".into()]])
            .unwrap();
        let _ = session.report();
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.component_stats().full_builds, 1);
    }

    #[test]
    fn late_evidence_can_flip_an_earlier_repair() {
        // First batches: "Cicago" is the 60608 majority, so the lone
        // "Chicago" looks wrong. Later batches flip the majority — the
        // affected-set recompute must revisit the old cells.
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City"]),
            "FD: Zip -> City",
            HoloConfig::default().with_threads(1),
        )
        .unwrap();
        let early: Vec<Vec<String>> = vec![
            vec!["60608".into(), "Cicago".into()],
            vec!["60608".into(), "Cicago".into()],
            vec!["60608".into(), "Chicago".into()],
        ];
        session.push_batch(&early).unwrap();
        let late: Vec<Vec<String>> = (0..6)
            .map(|_| vec!["60608".to_string(), "Chicago".to_string()])
            .collect();
        session.push_batch(&late).unwrap();
        let report = session.report();
        // One-shot over the union agrees byte for byte.
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        for row in early.iter().chain(&late) {
            ds.push_row(row);
        }
        let reference = HoloClean::new(ds)
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .run()
            .unwrap()
            .report;
        assert_eq!(report, reference);
        assert!(report.repairs.iter().any(|r| r.new_value == "Chicago"));
    }

    #[test]
    fn unsupported_variants_and_bad_batches_are_typed_errors() {
        let schema = Schema::new(vec!["Zip", "City"]);
        for variant in [ModelVariant::DcFactors, ModelVariant::DcFeatsDcFactors] {
            let err = StreamSession::new(
                schema.clone(),
                "FD: Zip -> City",
                HoloConfig::default().with_variant(variant),
            )
            .map(|_| ())
            .expect_err("DC-factor variants are rejected");
            assert!(matches!(err, HoloError::Stream(_)), "{err}");
        }
        let err = StreamSession::new(
            schema.clone(),
            "FD: Zip -> City",
            HoloConfig::default().with_source("a", "b"),
        )
        .map(|_| ())
        .expect_err("source features are rejected");
        assert!(matches!(err, HoloError::Stream(_)));

        let mut session =
            StreamSession::new(schema, "FD: Zip -> City", HoloConfig::default()).unwrap();
        let err = session
            .push_batch(&[vec!["only-one".to_string()]])
            .expect_err("arity mismatch is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");
        assert_eq!(session.dataset().tuple_count(), 0, "nothing was appended");
    }

    #[test]
    fn force_full_rebuild_produces_identical_output() {
        let rows = zip_city_rows();
        let mut fast = streamed(&rows, 4, 1);
        let mut slow = {
            let mut config = HoloConfig::default().with_threads(1);
            config.stream.force_full_rebuild = true;
            let mut session = StreamSession::new(
                Schema::new(vec!["Zip", "City", "State"]),
                "FD: Zip -> City",
                config,
            )
            .unwrap();
            for chunk in rows.chunks(rows.len().div_ceil(4)) {
                session.push_batch(chunk).unwrap();
            }
            session
        };
        assert_eq!(fast.report(), slow.report());
        assert_eq!(fast.design_stats().full_builds, 1, "patched path");
        assert!(
            slow.design_stats().full_builds > 1,
            "rebuild path recompiles per batch"
        );
    }

    #[test]
    fn interim_report_tracks_new_evidence_between_batches() {
        let rows = zip_city_rows();
        let mut session = streamed(&rows, 3, 1);
        let interim = session.interim_report();
        let exact = session.report();
        // Interim serves the same cells, with (possibly) different
        // posterior mass: same posterior count, approximate weights.
        assert_eq!(interim.posteriors.len(), exact.posteriors.len());
        assert!(session.ingest_stats().replay_minibatches > 0);
    }
}
