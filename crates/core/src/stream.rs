//! Streaming ingestion: the one-shot pipeline as an **incremental
//! engine** with batch-equivalent repairs.
//!
//! The paper specifies HoloClean as compile-then-infer over a frozen
//! dataset; a production service ingests tuples continuously. PClean
//! (arXiv 2007.11838) and the PUD framework (arXiv 1801.06750) both argue
//! the resolution: keep **one** probabilistic model alive and *condition
//! it on growing evidence*, recomputing only the part of the model a new
//! record touches. [`StreamSession`] is that engine, built on the
//! incremental substrates of the earlier refactors — the in-place
//! [`holo_factor::DesignMatrix`] patching, the in-place
//! [`holo_factor::ComponentIndex`] maintenance, and partitioned
//! inference.
//!
//! ## Per-batch dataflow ([`StreamSession::push_batch`])
//!
//! 1. **Append** — rows join the dataset with stable `TupleId`s;
//!    co-occurrence statistics fold in the batch incrementally
//!    (`CooccurStats::extend_with_threads`, `O(batch · |A|²)`).
//! 2. **Delta detect** — a persistent blocking index
//!    ([`holo_constraints::DeltaViolationIndex`]) is probed with *only
//!    the new tuples, in both join directions*; the per-batch violations
//!    union to exactly the one-shot violation set.
//! 3. **Delta compile** — an *affected set* of old tuples is derived from
//!    value postings (same-column sharing moves co-occurrence counts;
//!    join-key postings over stored values **and** domain candidates move
//!    relaxed-DC partner counts). Domains and features are recomputed
//!    only for cells of affected tuples (plus the batch itself); every
//!    other cell reuses its cached compile verbatim. Changes funnel
//!    through the [`holo_factor::FactorGraph`] mutators, so the design
//!    matrix and component index **patch in place** — after the first
//!    batch their `full_builds` counters stay at 1 for the life of the
//!    stream (test-pinned).
//! 4. **Warm-start learning** — when
//!    [`crate::config::StreamConfig::refine_each_batch`] is on, SGD
//!    resumes from the
//!    current weights over a replay window biased to the new evidence
//!    ([`holo_factor::learn::train_replay`]) so interim posteriors stay
//!    fresh at `O(window)` per batch.
//! 5. **Re-inference** — restricted to the query-bearing components via
//!    [`holo_factor::infer_partitioned`], on demand.
//!
//! ## The equivalence contract
//!
//! [`StreamSession::report`] is **batch-equivalent**: feeding a dataset
//! in any number of batches, at any thread count, produces repairs and
//! posteriors *byte-identical* to the one-shot [`crate::HoloClean`] run
//! over the final dataset. Three mechanisms carry the guarantee:
//!
//! * the affected-set recomputation is a sound over-approximation, so a
//!   cell's cached domain/features are reused only when a fresh compile
//!   would reproduce them exactly;
//! * everything order-sensitive is order-canonical: evidence is
//!   re-selected per batch by replaying the compiler's seeded sampling
//!   over the full dataset, SGD visits examples through
//!   [`holo_factor::learn::train_examples`] in the canonical
//!   (attribute-major, cell-sorted) order rather than graph insertion
//!   order, and domain ties break on value *strings* (interning order
//!   differs between the streaming and one-shot loaders);
//! * batch-equivalent reads run a **canonical retrain** — full SGD from
//!   the priors over the canonical example order — because an SGD
//!   endpoint is a function of its whole trajectory, so no warm-started
//!   shortcut can be bitwise-faithful. The model is never recompiled for
//!   it: the retrain reads the patched design matrix.
//!
//! Retired variables (a cell whose domain changed, an evidence cell that
//! fell out of the replay sample) are *pinned* in place — pinning keeps
//! the design matrix and component index valid without a rebuild — and
//! excluded from the canonical example and query lists, so they are
//! invisible to learning, inference, and reports.
//!
//! ## Retraction: updates, deletes, and compaction
//!
//! Growth is not the only mutation: [`StreamSession::push_updates`]
//! rewrites live rows in place and [`StreamSession::push_deletes`]
//! tombstones them (`TupleId`s are stable — deletion never renumbers).
//! Every incrementally-maintained layer folds the retraction *out*:
//! co-occurrence statistics via
//! [`holo_dataset::CooccurStats::retract_with_threads`], the blocking
//! index via [`holo_constraints::DeltaViolationIndex::retract`] (so
//! delta detection stays union-equal to a one-shot scan of the live
//! table), and the factor graph via **clique retirement**
//! ([`holo_factor::FactorGraph::retire_clique`]) and evidence pinning —
//! all in-place patches, so between compaction ticks every
//! `full_builds` counter stays frozen.
//!
//! What patching cannot do is *renumber*: tombstoned rows, pinned
//! variables and retired cliques keep their slots. The amortised cure is
//! [`StreamSession::compact`] — scheduled every
//! [`crate::config::StreamConfig::compact_every`] mutation batches, or
//! run lazily before an exact read that needs it — which rebuilds the
//! graph, the feature registry and all three cached structures from the
//! live table only, carrying the cumulative counters across the swap.
//! Any retraction (and, under a clique-grounding variant, any push at
//! all) marks the session dirty, so the next batch-equivalent read
//! compacts first: exactness comes from the canonical rebuild,
//! incrementality from how rarely it runs. Insert-only streams of the
//! relaxed model never compact — their patch-path pin
//! (`full_builds == 1` for the life of the stream) still holds.
//!
//! Reports are issued in **live coordinates**: repairs and posteriors
//! remap each physical `TupleId` to its rank among live tuples, so the
//! output is byte-identical to a one-shot run over the final live table
//! (the remap is the identity for insert-only streams).
//!
//! ## Scope
//!
//! The streaming engine serves every model variant. The **relaxed §5.2
//! model** ([`crate::ModelVariant::DcFeats`], the default and the
//! paper's own recommendation at scale) streams on the pure patch path.
//! The DC-clique variants stream through retirement plus compaction:
//! between ticks, stale cliques are retired in place (components never
//! re-split, colors never lower) and newly-implied cliques wait for the
//! next compaction, which re-grounds Algorithm 1 over the live table —
//! so interim reports are best-effort while exact reads stay
//! byte-equivalent. Source-reliability features and external
//! dictionaries remain out of scope ([`StreamSession::new`] rejects
//! them).

use crate::compile::{
    build_components, collect_cell_features, ground_dc_factors, select_evidence_cells, CompileStats,
};
use crate::config::HoloConfig;
use crate::context::DatasetContext;
use crate::domain::CellDomains;
use crate::error::HoloError;
use crate::features::{DcFeaturizer, FeatureBuffer, FeatureKey, MatchLookup};
use crate::pipeline::{StageKind, StageTimings};
use crate::repair::RepairReport;
use holo_constraints::{parse_constraints, ConstraintSet, DeltaViolationIndex, Violation};
use holo_dataset::{
    AttrId, CellRef, CooccurStats, Dataset, FxHashMap, FxHashSet, Schema, Sym, TupleId,
};
use holo_factor::{
    infer_partitioned, learn, FactorGraph, FeatureRegistry, LearnStats, Marginals, PartitionStats,
    PartitionedConfig, VarId, Variable, Weights,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Cumulative streaming counters, riding in [`StageTimings::ingest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Batches ingested.
    pub batches: u64,
    /// Tuples ingested.
    pub tuples: u64,
    /// Violations found by delta detection (== one-shot total, by the
    /// delta-index contract).
    pub delta_violations: u64,
    /// Old tuples pulled into recompilation by the affected-set analysis.
    pub affected_tuples: u64,
    /// Cells whose domain/features were recomputed.
    pub cells_recomputed: u64,
    /// Cells that reused their cached compile verbatim.
    pub cells_reused: u64,
    /// Variables appended to the live graph (patching the design matrix
    /// and component index in place).
    pub vars_added: u64,
    /// Variables retired (pinned out of the model, or dropped from the
    /// evidence sample).
    pub vars_retired: u64,
    /// Minibatches executed by warm-start replay passes.
    pub replay_minibatches: u64,
    /// Canonical from-priors retrains executed for batch-equivalent reads.
    pub canonical_retrains: u64,
    /// Rows tombstoned by [`StreamSession::push_deletes`].
    pub rows_deleted: u64,
    /// Rows rewritten in place by [`StreamSession::push_updates`].
    pub rows_updated: u64,
}

/// What one [`StreamSession::push_batch`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Rows appended.
    pub appended: usize,
    /// Rows tombstoned.
    pub deleted: usize,
    /// Rows rewritten in place.
    pub updated: usize,
    /// Violations the batch introduced.
    pub new_violations: usize,
    /// Old tuples whose cells needed recompilation.
    pub affected_tuples: usize,
    /// Cells recomputed (batch cells + affected-tuple cells).
    pub cells_recomputed: usize,
    /// Cells served from the compile cache.
    pub cells_reused: usize,
    /// Variables appended to the live graph.
    pub vars_added: usize,
    /// Variables retired.
    pub vars_retired: usize,
}

/// Cached compile state of one live cell.
struct CellState {
    /// The live variable, if the cell has ≥ 2 candidates.
    var: Option<VarId>,
    /// Query (noisy) vs evidence role.
    query: bool,
    /// Pruned candidate domain (Algorithm 2 order).
    domain: Vec<Sym>,
    /// Collected features (empty for var-less singleton cells).
    features: FeatureBuffer,
}

/// The incremental repair engine. See the module docs for the dataflow
/// and the equivalence contract.
///
/// ```
/// use holo_dataset::Schema;
/// use holoclean::stream::StreamSession;
/// use holoclean::HoloConfig;
///
/// let mut session = StreamSession::new(
///     Schema::new(vec!["Zip", "City"]),
///     "FD: Zip -> City",
///     HoloConfig::default(),
/// ).unwrap();
/// let rows: Vec<Vec<String>> = (0..8)
///     .map(|_| vec!["60608".into(), "Chicago".into()])
///     .collect();
/// session.push_batch(&rows).unwrap();
/// session.push_batch(&[vec!["60608".to_string(), "Cicago".to_string()]]).unwrap();
/// let report = session.report();
/// assert_eq!(report.repairs.len(), 1);
/// assert_eq!(report.repairs[0].new_value, "Chicago");
/// ```
pub struct StreamSession {
    ds: Dataset,
    constraints: ConstraintSet,
    config: HoloConfig,
    /// Persistent violation blocking index (forward + backward).
    delta_index: DeltaViolationIndex,
    /// Incrementally-maintained co-occurrence statistics.
    stats: CooccurStats,
    /// `(attr, stored value) → tuples`, for the affected-set analysis.
    postings: FxHashMap<(AttrId, Sym), Vec<TupleId>>,
    /// `(join-key attr, domain candidate) → tuples`: cells on join-key
    /// attributes depend on partner buckets of *every* candidate, not
    /// just the stored value.
    cand_postings: FxHashMap<(AttrId, Sym), FxHashSet<TupleId>>,
    /// Attributes participating in some cross-tuple equality predicate,
    /// as `(t1-side, t2-side)` pairs.
    eq_pairs: Vec<(AttrId, AttrId)>,
    /// Some two-tuple constraint has no equality join key: its relaxed
    /// features couple every tuple to every tuple, so every batch
    /// invalidates everything.
    global_coupling: bool,
    /// Violations alive over the live table — retraction `retain`s them
    /// out, so the set stays union-equal to a one-shot scan.
    live_violations: Vec<Violation>,
    noisy: FxHashSet<CellRef>,
    /// An exact read can only be served after a compaction: set by any
    /// retraction (stale registry keys would skew the weight vector) and
    /// by every push under a clique-grounding variant.
    needs_compact: bool,
    /// Mutation batches since the last compaction, driving the
    /// [`crate::config::StreamConfig::compact_every`] schedule.
    batches_since_compact: usize,
    graph: FactorGraph,
    registry: FeatureRegistry<FeatureKey>,
    cell_states: FxHashMap<CellRef, CellState>,
    /// Live query cells/vars, sorted by cell — the report order.
    query_cells: Vec<CellRef>,
    query_vars: Vec<VarId>,
    /// Live evidence vars in canonical (attribute-major, cell-sorted
    /// selection) order — the SGD example order.
    examples: Vec<VarId>,
    /// Evidence vars split as (reused, fresh-this-batch) for replay.
    replay_order: Vec<VarId>,
    fresh_examples: usize,
    weights: Weights,
    /// Whether `weights` came from a canonical retrain of the current
    /// model (vs a warm replay or a stale batch).
    weights_exact: bool,
    marginals: Option<Marginals>,
    compile_stats: CompileStats,
    learn_stats: Option<LearnStats>,
    partition_stats: Option<PartitionStats>,
    timings: StageTimings,
}

impl StreamSession {
    /// Opens a session over `schema` with constraints parsed from
    /// `text` (DC lines and/or `FD:` sugar). The dataset starts empty;
    /// feed rows with [`StreamSession::push_batch`].
    pub fn new(schema: Schema, text: &str, config: HoloConfig) -> Result<Self, HoloError> {
        let mut ds = Dataset::new(schema);
        let parsed = parse_constraints(text, &mut ds)?;
        let mut constraints = ConstraintSet::new();
        for (_, c) in parsed.iter() {
            constraints.push(c.clone());
        }
        Self::with_constraints(ds, constraints, config)
    }

    /// Opens a session over an **empty** dataset (used for its schema and
    /// value pool — constraint constants are already interned) and an
    /// already-bound constraint set.
    pub fn with_constraints(
        ds: Dataset,
        constraints: ConstraintSet,
        config: HoloConfig,
    ) -> Result<Self, HoloError> {
        if ds.tuple_count() != 0 {
            return Err(HoloError::Stream(
                "streaming sessions start from an empty dataset; feed rows via push_batch".into(),
            ));
        }
        if config.source.is_some() {
            return Err(HoloError::Stream(
                "source-reliability features are not supported by the streaming engine".into(),
            ));
        }
        let mut eq_pairs: Vec<(AttrId, AttrId)> = Vec::new();
        let mut global_coupling = false;
        for (_, c) in constraints.iter() {
            if !c.two_tuple {
                continue;
            }
            let mut found = false;
            for p in &c.predicates {
                if !p.is_cross_tuple_eq() {
                    continue;
                }
                found = true;
                let rhs_attr = match p.rhs {
                    holo_constraints::Operand::Cell(_, a) => a,
                    holo_constraints::Operand::Const(_) => continue,
                };
                let pair = match p.lhs_tuple {
                    holo_constraints::TupleVar::T1 => (p.lhs_attr, rhs_attr),
                    holo_constraints::TupleVar::T2 => (rhs_attr, p.lhs_attr),
                };
                if !eq_pairs.contains(&pair) {
                    eq_pairs.push(pair);
                }
            }
            global_coupling |= !found;
        }
        let delta_index = DeltaViolationIndex::new(&constraints);
        let stats = CooccurStats::build_with_opts(&ds, 1, config.naive_stats);
        Ok(StreamSession {
            ds,
            constraints,
            config,
            delta_index,
            stats,
            postings: FxHashMap::default(),
            cand_postings: FxHashMap::default(),
            eq_pairs,
            global_coupling,
            live_violations: Vec::new(),
            noisy: FxHashSet::default(),
            needs_compact: false,
            batches_since_compact: 0,
            graph: FactorGraph::new(),
            registry: FeatureRegistry::new(),
            cell_states: FxHashMap::default(),
            query_cells: Vec::new(),
            query_vars: Vec::new(),
            examples: Vec::new(),
            replay_order: Vec::new(),
            fresh_examples: 0,
            weights: Weights::zeros(0),
            weights_exact: false,
            marginals: None,
            compile_stats: CompileStats::default(),
            learn_stats: None,
            partition_stats: None,
            timings: StageTimings::default(),
        })
    }

    /// Ingests one batch of raw rows: append → delta detect → delta
    /// compile → (optional) warm-start replay. Returns what the batch
    /// cost; batch-equivalent repairs are read with
    /// [`StreamSession::report`].
    pub fn push_batch<S: AsRef<str>>(&mut self, rows: &[Vec<S>]) -> Result<BatchReport, HoloError> {
        let arity = self.ds.schema().len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != arity {
                return Err(HoloError::Stream(format!(
                    "batch row {i} has {} values; the schema has {arity} attributes",
                    row.len()
                )));
            }
        }
        let threads = self.config.threads;
        let mut report = BatchReport {
            appended: rows.len(),
            ..BatchReport::default()
        };

        // ---- Append + incremental statistics + delta detection ----
        let t_detect = Instant::now();
        let from = self.ds.append_rows(rows);
        self.stats.extend_with_threads(&self.ds, from, threads);
        let new_violations = self
            .delta_index
            .ingest(&self.ds, &self.constraints, from, threads);
        for v in &new_violations {
            self.noisy.extend(v.cells.iter().copied());
        }
        report.new_violations = new_violations.len();
        self.timings.record(StageKind::Detect, t_detect.elapsed());

        // ---- Delta compile ----
        let t_compile = Instant::now();
        if self.config.stream.force_full_rebuild {
            self.graph.invalidate_design();
            self.graph.invalidate_components();
        }
        let affected = self.affected_tuples(from, &new_violations);
        report.affected_tuples = affected.len();
        // New tuples join the postings only now, so the affected-set scan
        // above saw exactly the pre-batch state.
        for t in from.index()..self.ds.tuple_count() {
            let t = TupleId(t as u32);
            for attr in self.ds.schema().attrs() {
                let v = self.ds.cell(t, attr);
                if !v.is_null() {
                    self.postings.entry((attr, v)).or_default().push(t);
                }
            }
        }
        self.live_violations.extend(new_violations);
        self.recompile(&affected, from, &mut report, false)?;
        self.timings.record(StageKind::Compile, t_compile.elapsed());

        self.invalidate_and_replay();

        let ingest = &mut self.timings.ingest;
        ingest.batches += 1;
        ingest.tuples += rows.len() as u64;
        ingest.delta_violations += report.new_violations as u64;
        self.accumulate(&report);
        self.finish_mutation()?;
        Ok(report)
    }

    /// Tombstones live rows. Statistics, the blocking index, the live
    /// violation store and the value postings all fold the rows *out*;
    /// query variables of the dead cells are pinned in place and their
    /// clique factors retired; cells the rows conditioned are recompiled.
    /// `TupleId`s are stable — nothing is renumbered until
    /// [`StreamSession::compact`] — and the session is marked dirty, so
    /// the next exact read compacts first.
    pub fn push_deletes(&mut self, rows: &[TupleId]) -> Result<BatchReport, HoloError> {
        self.validate_live(rows)?;
        let threads = self.config.threads;
        let mut report = BatchReport {
            deleted: rows.len(),
            ..BatchReport::default()
        };

        // ---- Retract statistics, index postings, and violations ----
        let t_detect = Instant::now();
        self.stats.retract_with_threads(&self.ds, rows, threads);
        self.delta_index.retract(&self.ds, rows);
        let old_values = self.row_values(rows);
        self.remove_postings(rows);
        let dead: FxHashSet<TupleId> = rows.iter().copied().collect();
        let dropped_cells = self.retain_violations(&dead);
        self.rebuild_noisy();
        self.ds.delete_rows(rows);
        self.timings.record(StageKind::Detect, t_detect.elapsed());

        // ---- Patch the model: retire, pin, recompile the blast radius ----
        let t_compile = Instant::now();
        if self.config.stream.force_full_rebuild {
            self.graph.invalidate_design();
            self.graph.invalidate_components();
        }
        self.retire_cliques_touching(rows);
        // Pin the dead cells' query variables to their observed value:
        // the design matrix stays valid in place, inference skips them,
        // and compaction renumbers them away.
        for &t in rows {
            for attr in self.ds.schema().attrs() {
                let cell = CellRef { tuple: t, attr };
                if let Some(st) = self.cell_states.get(&cell) {
                    if let (Some(v), true) = (st.var, st.query) {
                        let var = self.graph.var(v);
                        let value = var.domain[var.init.unwrap_or(0)];
                        self.graph.pin_evidence(v, value);
                    }
                }
            }
        }
        let mut affected = self.affected_for_mutation(&old_values, &dropped_cells, &dead);
        for t in &dead {
            affected.remove(t);
        }
        report.affected_tuples = affected.len();
        let from = TupleId(self.ds.tuple_count() as u32);
        self.recompile(&affected, from, &mut report, false)?;
        self.timings.record(StageKind::Compile, t_compile.elapsed());

        self.invalidate_and_replay();
        self.needs_compact = true;

        let ingest = &mut self.timings.ingest;
        ingest.batches += 1;
        ingest.rows_deleted += rows.len() as u64;
        self.accumulate(&report);
        self.finish_mutation()?;
        Ok(report)
    }

    /// Rewrites live rows in place (same `TupleId`, new values):
    /// retraction of the old values and absorption of the new ones flow
    /// through the same incremental layers as
    /// [`StreamSession::push_deletes`] / [`StreamSession::push_batch`],
    /// and the blocking index is re-probed with the rewritten rows in
    /// both join directions so the live violation set stays union-equal
    /// to a one-shot scan. Marks the session dirty for the next exact
    /// read.
    pub fn push_updates<S: AsRef<str>>(
        &mut self,
        updates: &[(TupleId, Vec<S>)],
    ) -> Result<BatchReport, HoloError> {
        let rows: Vec<TupleId> = updates.iter().map(|(t, _)| *t).collect();
        self.validate_live(&rows)?;
        let arity = self.ds.schema().len();
        for (t, vals) in updates {
            if vals.len() != arity {
                return Err(HoloError::Stream(format!(
                    "update of tuple {} has {} values; the schema has {arity} attributes",
                    t.index(),
                    vals.len()
                )));
            }
        }
        let threads = self.config.threads;
        let mut report = BatchReport {
            updated: rows.len(),
            ..BatchReport::default()
        };

        // ---- Retract the old values, absorb the new, re-probe ----
        let t_detect = Instant::now();
        self.stats.retract_with_threads(&self.ds, &rows, threads);
        self.delta_index.retract(&self.ds, &rows);
        let mut values = self.row_values(&rows);
        self.remove_postings(&rows);
        let touched: FxHashSet<TupleId> = rows.iter().copied().collect();
        let dropped_cells = self.retain_violations(&touched);
        self.ds.update_rows(updates);
        self.stats
            .absorb_rows_with_threads(&self.ds, &rows, threads);
        self.delta_index.absorb_rows(&self.ds, &rows);
        let new_violations =
            self.delta_index
                .probe_rows(&self.ds, &self.constraints, &rows, threads);
        report.new_violations = new_violations.len();
        values.extend(self.row_values(&rows));
        self.add_postings(&rows);
        self.timings.record(StageKind::Detect, t_detect.elapsed());

        // ---- Patch the model ----
        let t_compile = Instant::now();
        if self.config.stream.force_full_rebuild {
            self.graph.invalidate_design();
            self.graph.invalidate_components();
        }
        self.retire_cliques_touching(&rows);
        let mut affected =
            self.affected_for_mutation(&values, &dropped_cells, &FxHashSet::default());
        for v in &new_violations {
            for cell in &v.cells {
                affected.insert(cell.tuple);
            }
        }
        affected.extend(rows.iter().copied());
        self.live_violations.extend(new_violations);
        self.rebuild_noisy();
        report.affected_tuples = affected.len();
        let from = TupleId(self.ds.tuple_count() as u32);
        self.recompile(&affected, from, &mut report, false)?;
        self.timings.record(StageKind::Compile, t_compile.elapsed());

        self.invalidate_and_replay();
        self.needs_compact = true;

        let ingest = &mut self.timings.ingest;
        ingest.batches += 1;
        ingest.rows_updated += rows.len() as u64;
        ingest.delta_violations += report.new_violations as u64;
        self.accumulate(&report);
        self.finish_mutation()?;
        Ok(report)
    }

    /// The one amortised full rebuild: swaps in a fresh graph and
    /// registry (carrying the cumulative counters across the swap) and
    /// recompiles every live cell in the one-shot compiler's canonical
    /// order, so tombstoned rows, pinned variables and retired cliques
    /// are renumbered away and — under a clique-grounding variant —
    /// Algorithm 1 is re-grounded over the live table. Runs on the
    /// [`crate::config::StreamConfig::compact_every`] schedule and lazily
    /// before exact reads that need it; calling it by hand is harmless.
    pub fn compact(&mut self) -> Result<(), HoloError> {
        let t_compile = Instant::now();
        let old_graph = std::mem::replace(&mut self.graph, FactorGraph::new());
        self.graph.carry_counters_from(&old_graph);
        drop(old_graph);
        self.registry = FeatureRegistry::new();
        self.cell_states.clear();
        self.cand_postings.clear();
        let mut report = BatchReport::default();
        self.recompile(&FxHashSet::default(), TupleId(0), &mut report, true)?;
        self.graph.note_compaction(report.vars_added as u64);
        // Warm weights are keyed by the retired registry; start the new
        // model from its priors (the next exact read retrains anyway).
        self.weights = self.registry.build_weights();
        self.weights_exact = false;
        self.marginals = None;
        self.partition_stats = None;
        self.needs_compact = false;
        self.batches_since_compact = 0;
        self.timings.record(StageKind::Compile, t_compile.elapsed());
        Ok(())
    }

    /// Post-mutation bookkeeping shared by the three push paths: variants
    /// that ground DC cliques can only be served exactly from a canonical
    /// rebuild (Algorithm 1 re-grounding), and the scheduled compaction
    /// ticks over every kind of mutation batch.
    fn finish_mutation(&mut self) -> Result<(), HoloError> {
        if self.config.variant.uses_dc_factors() {
            self.needs_compact = true;
        }
        self.batches_since_compact += 1;
        let every = self.config.stream.compact_every;
        if every > 0 && self.batches_since_compact >= every {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds one batch's costs into the cumulative ingest counters.
    fn accumulate(&mut self, report: &BatchReport) {
        let ingest = &mut self.timings.ingest;
        ingest.affected_tuples += report.affected_tuples as u64;
        ingest.cells_recomputed += report.cells_recomputed as u64;
        ingest.cells_reused += report.cells_reused as u64;
        ingest.vars_added += report.vars_added as u64;
        ingest.vars_retired += report.vars_retired as u64;
    }

    /// Invalidates exact-read state after a mutation and, when
    /// [`crate::config::StreamConfig::refine_each_batch`] is on, runs the
    /// warm-start replay pass that keeps interim posteriors fresh.
    fn invalidate_and_replay(&mut self) {
        self.marginals = None;
        self.partition_stats = None;
        self.weights_exact = false;
        if self.config.stream.refine_each_batch {
            let t_learn = Instant::now();
            let mut w = self.registry.build_weights();
            w.adopt_learned(&self.weights);
            let recent = self
                .fresh_examples
                .min(self.config.stream.replay_window.max(1));
            // Replay rides `config.learn.packed` like every learn site:
            // the arena is rebuilt per call, so batch-patched design
            // matrices never serve a stale pack.
            let stats = learn::train_replay(
                &self.graph,
                &mut w,
                &self.config.learn,
                self.config.threads,
                &self.replay_order,
                recent,
                self.config.stream.replay_epochs,
            );
            self.timings.ingest.replay_minibatches += stats.minibatches as u64;
            self.weights = w;
            self.timings.record(StageKind::Learn, t_learn.elapsed());
        }
    }

    /// Rejects mutation batches naming rows that are out of range, dead,
    /// or repeated within the batch.
    fn validate_live(&self, rows: &[TupleId]) -> Result<(), HoloError> {
        let mut seen: FxHashSet<TupleId> = FxHashSet::default();
        for &t in rows {
            if t.index() >= self.ds.tuple_count() || !self.ds.is_live(t) {
                return Err(HoloError::Stream(format!(
                    "tuple {} is not a live row of this session",
                    t.index()
                )));
            }
            if !seen.insert(t) {
                return Err(HoloError::Stream(format!(
                    "tuple {} appears more than once in one mutation batch",
                    t.index()
                )));
            }
        }
        Ok(())
    }

    /// The `(attr, value)` pairs currently stored in `rows`.
    fn row_values(&self, rows: &[TupleId]) -> Vec<(AttrId, Sym)> {
        let mut vals = Vec::with_capacity(rows.len() * self.ds.schema().len());
        for &t in rows {
            for attr in self.ds.schema().attrs() {
                vals.push((attr, self.ds.cell(t, attr)));
            }
        }
        vals
    }

    /// Removes `rows` from the value postings of their current values.
    fn remove_postings(&mut self, rows: &[TupleId]) {
        for &t in rows {
            for attr in self.ds.schema().attrs() {
                let v = self.ds.cell(t, attr);
                if v.is_null() {
                    continue;
                }
                if let Some(bucket) = self.postings.get_mut(&(attr, v)) {
                    if let Some(pos) = bucket.iter().position(|&x| x == t) {
                        bucket.swap_remove(pos);
                    }
                    if bucket.is_empty() {
                        self.postings.remove(&(attr, v));
                    }
                }
            }
        }
    }

    /// Adds `rows` to the value postings of their current values.
    fn add_postings(&mut self, rows: &[TupleId]) {
        for &t in rows {
            for attr in self.ds.schema().attrs() {
                let v = self.ds.cell(t, attr);
                if !v.is_null() {
                    self.postings.entry((attr, v)).or_default().push(t);
                }
            }
        }
    }

    /// Drops violations with an endpoint in `rows`, returning the cells
    /// of the dropped violations (their roles may flip back to clean).
    fn retain_violations(&mut self, rows: &FxHashSet<TupleId>) -> Vec<CellRef> {
        let mut dropped: Vec<CellRef> = Vec::new();
        self.live_violations.retain(|v| {
            let keep = !rows.contains(&v.t1) && !rows.contains(&v.t2);
            if !keep {
                dropped.extend(v.cells.iter().copied());
            }
            keep
        });
        dropped
    }

    /// Recomputes the noisy-cell set from the live violation store.
    fn rebuild_noisy(&mut self) {
        self.noisy.clear();
        for v in &self.live_violations {
            self.noisy.extend(v.cells.iter().copied());
        }
    }

    /// Retires every clique factor adjacent to a variable of `rows` —
    /// the in-place disable whose zeroed score keeps the design matrix,
    /// component index and coloring valid until compaction renumbers.
    fn retire_cliques_touching(&mut self, rows: &[TupleId]) {
        if !self.graph.has_cliques() {
            return;
        }
        let mut to_retire: Vec<u32> = Vec::new();
        for &t in rows {
            for attr in self.ds.schema().attrs() {
                let cell = CellRef { tuple: t, attr };
                if let Some(st) = self.cell_states.get(&cell) {
                    if let Some(v) = st.var {
                        to_retire.extend(self.graph.cliques_of(v).iter().copied());
                    }
                }
            }
        }
        to_retire.sort_unstable();
        to_retire.dedup();
        for idx in to_retire {
            self.graph.retire_clique(idx);
        }
    }

    /// Live tuples a fresh compile could score differently after a
    /// retraction whose rows held `values` (old values, plus — for
    /// updates — the new ones): the same posting/candidate-bucket hits as
    /// the insert path's [`StreamSession::affected_tuples`], plus the
    /// partner cells of violations the mutation removed.
    fn affected_for_mutation(
        &self,
        values: &[(AttrId, Sym)],
        dropped_cells: &[CellRef],
        exclude: &FxHashSet<TupleId>,
    ) -> FxHashSet<TupleId> {
        let mut affected: FxHashSet<TupleId> = FxHashSet::default();
        if self.config.stream.force_full_rebuild || self.global_coupling {
            affected.extend(self.ds.tuples().filter(|t| !exclude.contains(t)));
            return affected;
        }
        for cell in dropped_cells {
            affected.insert(cell.tuple);
        }
        let hit = |key: (AttrId, Sym), affected: &mut FxHashSet<TupleId>| {
            if let Some(ts) = self.postings.get(&key) {
                affected.extend(ts.iter().copied());
            }
            if let Some(ts) = self.cand_postings.get(&key) {
                affected.extend(ts.iter().copied());
            }
        };
        for &(attr, v) in values {
            if v.is_null() {
                continue;
            }
            hit((attr, v), &mut affected);
            for &(a1, a2) in &self.eq_pairs {
                if a2 == attr {
                    hit((a1, v), &mut affected);
                }
                if a1 == attr {
                    hit((a2, v), &mut affected);
                }
            }
        }
        affected
    }

    /// Old tuples whose cells a fresh compile could score differently
    /// after this batch — a sound over-approximation (see module docs).
    fn affected_tuples(&self, from: TupleId, new_violations: &[Violation]) -> FxHashSet<TupleId> {
        let mut affected: FxHashSet<TupleId> = FxHashSet::default();
        if self.config.stream.force_full_rebuild || self.global_coupling {
            affected.extend((0..from.index()).map(|t| TupleId(t as u32)));
            return affected;
        }
        // Violations re-flag cells of old partner tuples (role changes).
        for v in new_violations {
            for cell in &v.cells {
                if cell.tuple < from {
                    affected.insert(cell.tuple);
                }
            }
        }
        let hit = |key: (AttrId, Sym), affected: &mut FxHashSet<TupleId>| {
            if let Some(ts) = self.postings.get(&key) {
                affected.extend(ts.iter().copied());
            }
            if let Some(ts) = self.cand_postings.get(&key) {
                affected.extend(ts.iter().copied());
            }
        };
        for t in from.index()..self.ds.tuple_count() {
            let t = TupleId(t as u32);
            for attr in self.ds.schema().attrs() {
                let v = self.ds.cell(t, attr);
                if v.is_null() {
                    continue;
                }
                // Same-column sharing moves frequency and co-occurrence
                // counts of every tuple holding `v` at `attr`.
                hit((attr, v), &mut affected);
                // Join-key sharing moves relaxed-DC partner counts: the
                // new tuple enters the partner bucket of any tuple whose
                // opposite-side key (stored or candidate) matches.
                for &(a1, a2) in &self.eq_pairs {
                    if a2 == attr {
                        hit((a1, v), &mut affected);
                    }
                    if a1 == attr {
                        hit((a2, v), &mut affected);
                    }
                }
            }
        }
        affected
    }

    /// Rebuilds the canonical model spec for the current dataset —
    /// recomputing only cells in or conflicting with the batch — and
    /// patches the live graph to match it.
    fn recompile(
        &mut self,
        affected: &FxHashSet<TupleId>,
        from: TupleId,
        report: &mut BatchReport,
        ground_cliques: bool,
    ) -> Result<(), HoloError> {
        let threads = self.config.threads;
        let config = &self.config;
        let ds = &self.ds;
        let stats = &self.stats;
        let dc_featurizer = config
            .variant
            .uses_dc_features()
            .then(|| DcFeaturizer::new(ds, &self.constraints, config));

        // ---- Canonical membership ----
        let mut noisy_cells: Vec<CellRef> = self.noisy.iter().copied().collect();
        noisy_cells.sort_unstable();
        // Evidence selection runs the one-shot compiler's *own* seeded
        // sampling (shared helper) over the full dataset — membership is
        // a function of (dataset, noisy set, seed), not of arrival order.
        let selected = select_evidence_cells(ds, &self.noisy, config);

        // ---- Recompute the cells a fresh compile could change ----
        let needs_recompute =
            |cell: &CellRef, query: bool, states: &FxHashMap<CellRef, CellState>| {
                cell.tuple >= from
                    || affected.contains(&cell.tuple)
                    || match states.get(cell) {
                        Some(st) => st.query != query,
                        None => true,
                    }
            };
        let evidence_tau = config.tau.min(config.evidence_tau_cap);
        let mut work: Vec<(CellRef, bool)> = Vec::new();
        for &cell in &noisy_cells {
            if needs_recompute(&cell, true, &self.cell_states) {
                work.push((cell, true));
            }
        }
        for &cell in &selected {
            if needs_recompute(&cell, false, &self.cell_states) {
                work.push((cell, false));
            }
        }
        // No dictionaries and no source features in streaming sessions:
        // the shared featurizer sees an empty lookup (grounds nothing),
        // exactly what the one-shot compiler produces without them.
        let no_matches = MatchLookup::default();
        // Correlation gate, recomputed lazily at this batch boundary (the
        // mutation that scheduled this recompile reset the cached view).
        let gate = config
            .cor_strength
            .map(|min_corr| crate::domain::PruneGate {
                corr: stats.correlations(),
                min_corr,
            });
        let computed: Vec<(Vec<Sym>, FeatureBuffer)> =
            holo_parallel::parallel_map(threads, &work, |_, &(cell, query)| {
                let tau = if query { config.tau } else { evidence_tau };
                let domain = crate::domain::prune_cell_gated(
                    ds,
                    cell,
                    stats,
                    tau,
                    config.max_domain,
                    config.min_cond_support,
                    gate,
                );
                let mut buf = FeatureBuffer::default();
                if domain.len() >= 2 {
                    collect_cell_features(
                        &mut buf,
                        ds,
                        stats,
                        &no_matches,
                        config,
                        dc_featurizer.as_ref(),
                        None,
                        cell,
                        &domain,
                    );
                }
                (domain, buf)
            });
        report.cells_recomputed = work.len();
        let mut fresh: FxHashMap<CellRef, (Vec<Sym>, FeatureBuffer)> =
            work.iter().map(|&(cell, _)| cell).zip(computed).collect();

        // ---- Diff against the live graph, in canonical order ----
        let mut cstats = CompileStats::default();
        self.query_cells.clear();
        self.query_vars.clear();
        self.examples.clear();
        let mut reused_examples: Vec<VarId> = Vec::new();
        let mut fresh_examples: Vec<VarId> = Vec::new();
        let mut live: FxHashSet<CellRef> = FxHashSet::with_capacity_and_hasher(
            noisy_cells.len() + selected.len(),
            Default::default(),
        );

        for &cell in &noisy_cells {
            live.insert(cell);
            let (var, _) = self.sync_cell(cell, true, fresh.remove(&cell), report)?;
            match var {
                Some(v) => {
                    self.query_cells.push(cell);
                    self.query_vars.push(v);
                    cstats.total_candidates += self.graph.var(v).arity();
                }
                None => cstats.singleton_noisy_cells += 1,
            }
        }
        for &cell in &selected {
            live.insert(cell);
            let (var, was_fresh) = self.sync_cell(cell, false, fresh.remove(&cell), report)?;
            if let Some(v) = var {
                self.examples.push(v);
                if was_fresh {
                    fresh_examples.push(v);
                } else {
                    reused_examples.push(v);
                }
            }
        }
        report.cells_reused = live.len() - report.cells_recomputed;

        // Drop states of cells that left the membership (evidence cells
        // the reshuffled sample no longer selects). Their variables stay
        // in the graph as inert evidence — removal would force a matrix
        // rebuild — but nothing reads them again unless the sample
        // re-selects the cell, which recompiles it afresh.
        self.cell_states.retain(|cell, st| {
            let keep = live.contains(cell);
            if !keep && st.var.is_some() {
                report.vars_retired += 1;
            }
            keep
        });

        // Replay order: surviving examples first, this batch's new
        // evidence last — `train_replay` biases its window to the tail.
        self.fresh_examples = fresh_examples.len();
        self.replay_order = reused_examples;
        self.replay_order.append(&mut fresh_examples);

        cstats.query_vars = self.query_vars.len();
        cstats.evidence_vars = self.examples.len();
        cstats.factors = self
            .cell_states
            .values()
            .filter(|st| st.var.is_some())
            .map(|st| st.features.len())
            .sum();

        // A compaction pass grounds DC clique factors over the rebuilt
        // variables through the one-shot compiler's own Algorithm 1 entry
        // point, fed the same domains in the same order — the compacted
        // graph *is* the one-shot graph.
        if ground_cliques && self.config.variant.uses_dc_factors() {
            let mut domains = CellDomains::default();
            let mut cell_vars: FxHashMap<CellRef, VarId> = FxHashMap::default();
            for &cell in &noisy_cells {
                let st = &self.cell_states[&cell];
                domains.insert(cell, st.domain.clone());
                if let (Some(v), true) = (st.var, st.query) {
                    cell_vars.insert(cell, v);
                }
            }
            let components = self.config.variant.uses_partitioning().then(|| {
                build_components(
                    &self.constraints,
                    &self.live_violations,
                    self.ds.tuple_count(),
                )
            });
            ground_dc_factors(
                &mut self.graph,
                &mut self.registry,
                &self.ds,
                &self.constraints,
                &domains,
                &cell_vars,
                &self.config,
                components.as_deref(),
                &mut cstats,
            );
            cstats.factors = self.graph.factor_count();
        }
        self.compile_stats = cstats;

        // The first batch's forced builds — later batches find the caches
        // present and these calls are free reads.
        let _ = self.graph.design();
        let _ = self.graph.components();
        Ok(())
    }

    /// Brings one cell's live variable in line with its canonical compile
    /// state, reusing the cache when nothing changed. Returns the live
    /// variable (if the cell carries one) and whether it was (re)created.
    fn sync_cell(
        &mut self,
        cell: CellRef,
        query: bool,
        fresh: Option<(Vec<Sym>, FeatureBuffer)>,
        report: &mut BatchReport,
    ) -> Result<(Option<VarId>, bool), HoloError> {
        if let Some((domain, features)) = fresh {
            if let Some(st) = self.cell_states.get(&cell) {
                if st.query == query && st.domain == domain && st.features == features {
                    // Conservatively recomputed, but nothing changed.
                    return Ok((st.var, false));
                }
                // The cell's model changed: retire the old variable. A
                // query variable is pinned to its observed value so
                // inference skips it; an evidence variable is simply no
                // longer listed as an example.
                if let Some(v) = st.var {
                    if st.query {
                        let var = self.graph.var(v);
                        let k = var.init.unwrap_or(0);
                        let value = var.domain[k];
                        self.graph.pin_evidence(v, value);
                    }
                    report.vars_retired += 1;
                }
            }
            let var = if domain.len() >= 2 {
                let init_pos = domain.iter().position(|&d| d == self.ds.cell_ref(cell));
                let variable = if query {
                    Variable::query(domain.clone(), init_pos)
                } else {
                    let observed = init_pos.ok_or_else(|| HoloError::PrunedInitialValue {
                        cell,
                        attr: self.ds.schema().attr_name(cell.attr).to_string(),
                    })?;
                    Variable::evidence(domain.clone(), observed)
                };
                let rows = features.to_rows(&mut self.registry, domain.len());
                let v = self.graph.add_variable_with_features(variable, rows);
                report.vars_added += 1;
                // Candidate postings: cells on join-key attributes depend
                // on partner buckets of every candidate value.
                for &(a1, a2) in &self.eq_pairs {
                    if cell.attr == a1 || cell.attr == a2 {
                        for &d in &domain {
                            if !d.is_null() {
                                self.cand_postings
                                    .entry((cell.attr, d))
                                    .or_default()
                                    .insert(cell.tuple);
                            }
                        }
                    }
                }
                Some(v)
            } else {
                None
            };
            self.cell_states.insert(
                cell,
                CellState {
                    var,
                    query,
                    domain,
                    features,
                },
            );
            Ok((var, true))
        } else {
            // Untouched by the batch: serve the cache.
            let st = self
                .cell_states
                .get(&cell)
                .expect("cells outside the recompute set keep a cached state");
            debug_assert_eq!(st.query, query);
            Ok((st.var, false))
        }
    }

    /// Canonical retrain + re-inference, if anything is stale. This is
    /// the batch-equivalence workhorse: full SGD from the priors over the
    /// canonical example order (reading the *patched* design matrix — the
    /// model is never recompiled), then partitioned inference over the
    /// dirty components.
    fn ensure_exact(&mut self) {
        if self.needs_compact {
            // A retraction or clique-grounding push happened since the
            // last compaction: only the canonical rebuild restores the
            // exact-read contract. Cannot fail — it recompiles live
            // cells, whose observed values the pruner keeps.
            self.compact()
                .expect("compaction recompiles live cells only");
        }
        let threads = self.config.threads;
        if !self.weights_exact {
            let t_learn = Instant::now();
            let mut w = self.registry.build_weights();
            let stats = learn::train_examples(
                &self.graph,
                &mut w,
                &self.config.learn,
                threads,
                &self.examples,
            );
            self.learn_stats = (!self.examples.is_empty()).then_some(stats);
            self.weights = w;
            self.weights_exact = true;
            self.timings.ingest.canonical_retrains += 1;
            self.timings.record(StageKind::Learn, t_learn.elapsed());
            self.marginals = None;
        }
        if self.marginals.is_none() {
            let t_infer = Instant::now();
            let ctx = DatasetContext::new(&self.ds);
            let (marginals, partition) = infer_partitioned(
                &self.graph,
                &self.weights,
                &ctx,
                &PartitionedConfig {
                    gibbs: self.config.gibbs,
                    exact_limit: self.config.exact_component_limit,
                    chromatic: self.config.chromatic_gibbs,
                    score_cache: self.config.score_cache,
                },
                threads,
            );
            self.partition_stats = Some(partition);
            self.timings.partition = partition;
            self.marginals = Some(marginals);
            self.timings.record(StageKind::Infer, t_infer.elapsed());
        }
    }

    /// Batch-equivalent repairs and posteriors: byte-identical to a
    /// one-shot [`crate::HoloClean`] run over everything pushed so far,
    /// at any batch split and any thread count.
    pub fn report(&mut self) -> RepairReport {
        self.ensure_exact();
        let mut report = RepairReport::from_marginals(
            &self.ds,
            &self.query_cells,
            &self.query_vars,
            &self.graph,
            self.marginals.as_ref().expect("ensure_exact filled it"),
        );
        self.remap_to_live(&mut report);
        report
    }

    /// Rewrites report coordinates from physical (stable) ids to the
    /// dense ids a one-shot run over the live table would use: tuple ids
    /// become live ranks (monotone; the identity while nothing was ever
    /// deleted), and symbols are renumbered to row-major first-appearance
    /// order over the live table — the order a fresh interner assigns.
    /// The session pool drifts from that order whenever an update interns
    /// a transient value or a constraint constant interned before data,
    /// so the report always speaks one-shot coordinates, not the
    /// session's physical ones.
    fn remap_to_live(&self, report: &mut RepairReport) {
        let mut rank = 0u32;
        let ranks: Vec<u32> = (0..self.ds.tuple_count())
            .map(|t| {
                let r = rank;
                if self.ds.is_live(TupleId(t as u32)) {
                    rank += 1;
                }
                r
            })
            .collect();
        let mut dense: FxHashMap<Sym, Sym> = FxHashMap::default();
        dense.insert(Sym::NULL, Sym::NULL);
        for t in self.ds.tuples() {
            for a in 0..self.ds.schema().len() {
                let s = self.ds.cell(t, AttrId(a as u16));
                let next = Sym(dense.len() as u32);
                dense.entry(s).or_insert(next);
            }
        }
        let remap = |s: Sym| *dense.get(&s).expect("report symbol not in the live table");
        for r in &mut report.repairs {
            r.cell.tuple = TupleId(ranks[r.cell.tuple.index()]);
            r.old = remap(r.old);
            r.new = remap(r.new);
        }
        for p in &mut report.posteriors {
            p.cell.tuple = TupleId(ranks[p.cell.tuple.index()]);
            for (s, _) in &mut p.candidates {
                *s = remap(*s);
            }
        }
    }

    /// Interim repairs under the current (warm-started) weights — cheap,
    /// fresh after every batch when
    /// [`crate::config::StreamConfig::refine_each_batch`] is on, but
    /// *not* the batch-equivalent read.
    pub fn interim_report(&self) -> RepairReport {
        let ctx = DatasetContext::new(&self.ds);
        let mut weights = self.registry.build_weights();
        weights.adopt_learned(&self.weights);
        let (marginals, _) = infer_partitioned(
            &self.graph,
            &weights,
            &ctx,
            &PartitionedConfig {
                gibbs: self.config.gibbs,
                exact_limit: self.config.exact_component_limit,
                chromatic: self.config.chromatic_gibbs,
                score_cache: self.config.score_cache,
            },
            self.config.threads,
        );
        let mut report = RepairReport::from_marginals(
            &self.ds,
            &self.query_cells,
            &self.query_vars,
            &self.graph,
            &marginals,
        );
        self.remap_to_live(&mut report);
        report
    }

    /// The dataset as ingested so far.
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Current weights (canonical after [`StreamSession::report`],
    /// warm-started between batches).
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The feature registry (introspection: mapping learned weights back
    /// to their structured keys, e.g. per-constraint DC weights).
    pub fn registry(&self) -> &FeatureRegistry<FeatureKey> {
        &self.registry
    }

    /// Violations alive over the live table (== the one-shot count).
    pub fn violations(&self) -> usize {
        self.live_violations.len()
    }

    /// Cumulative retirement/compaction counters (cliques retired in
    /// place, variables renumbered away, compaction ticks) plus the
    /// live-vs-tombstoned row split of the backing table.
    pub fn retire_stats(&self) -> holo_factor::RetireStats {
        let mut r = self.graph.retire_stats();
        r.live_rows = self.ds.live_count() as u64;
        r.dead_rows = self.ds.dead_count() as u64;
        r
    }

    /// Noisy cells detected so far.
    pub fn noisy_cells(&self) -> usize {
        self.noisy.len()
    }

    /// Shape of the live model (live variables only; retired ones are
    /// excluded).
    pub fn compile_stats(&self) -> &CompileStats {
        &self.compile_stats
    }

    /// Learning diagnostics of the last canonical retrain.
    pub fn learn_stats(&self) -> Option<&LearnStats> {
        self.learn_stats.as_ref()
    }

    /// Routing split of the last inference pass.
    pub fn partition_stats(&self) -> Option<PartitionStats> {
        self.partition_stats
    }

    /// Cumulative stage timings and ingest counters. Design-matrix and
    /// component-index counters are snapshotted from the live graph.
    pub fn timings(&self) -> StageTimings {
        let mut t = self.timings;
        t.design = self.graph.design_stats();
        t.components = self.graph.component_stats();
        t.retire = self.retire_stats();
        t.stats = self.stats.stats_stats();
        t
    }

    /// Cumulative ingest counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.timings.ingest
    }

    /// Whether the live graph's patched design matrix and component index
    /// are bit-for-bit equal to fresh compiles of the current adjacency —
    /// the patch-path invariant, exposed for tests and diagnostics
    /// (`O(model)`; don't call it per batch in production).
    pub fn verify_patch_equivalence(&self) -> bool {
        self.graph.design() == &self.graph.compile_design()
            && self.graph.components() == &self.graph.compile_components()
    }

    /// Design-matrix build/patch counters of the live graph — pinned at
    /// one full build for the life of a (non-`force_full_rebuild`)
    /// stream.
    pub fn design_stats(&self) -> holo_factor::DesignStats {
        self.graph.design_stats()
    }

    /// Component-index build/patch counters of the live graph.
    pub fn component_stats(&self) -> holo_factor::ComponentStats {
        self.graph.component_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use crate::HoloClean;

    fn zip_city_rows() -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        for _ in 0..8 {
            rows.push(vec!["60608".into(), "Chicago".into(), "IL".into()]);
        }
        rows.push(vec!["60608".into(), "Cicago".into(), "IL".into()]);
        for _ in 0..5 {
            rows.push(vec!["60609".into(), "Evanston".into(), "IL".into()]);
        }
        rows
    }

    fn one_shot(rows: &[Vec<String>], threads: usize) -> RepairReport {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
        for row in rows {
            ds.push_row(row);
        }
        HoloClean::new(ds)
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .with_config(HoloConfig::default().with_threads(threads))
            .run()
            .unwrap()
            .report
    }

    fn streamed(rows: &[Vec<String>], batches: usize, threads: usize) -> StreamSession {
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City", "State"]),
            "FD: Zip -> City",
            HoloConfig::default().with_threads(threads),
        )
        .unwrap();
        for chunk in rows.chunks(rows.len().div_ceil(batches)) {
            session.push_batch(chunk).unwrap();
        }
        session
    }

    #[test]
    fn any_batch_split_matches_the_one_shot_run_bitwise() {
        let rows = zip_city_rows();
        let reference = one_shot(&rows, 1);
        assert_eq!(reference.repairs.len(), 1);
        for batches in [1, 3, 7, rows.len()] {
            for threads in [1, 2] {
                let mut session = streamed(&rows, batches, threads);
                let report = session.report();
                assert_eq!(
                    report, reference,
                    "batches = {batches}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn incrementality_is_pinned_after_the_first_batch() {
        let rows = zip_city_rows();
        let mut session = streamed(&rows, 4, 1);
        let _ = session.report();
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.component_stats().full_builds, 1);
        let stats = session.ingest_stats();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.tuples as usize, rows.len());
        assert!(stats.vars_added > 0);
        assert_eq!(stats.canonical_retrains, 1);
        // More data arrives after a report: still no rebuild.
        session
            .push_batch(&[vec!["60609".to_string(), "Evanstn".into(), "IL".into()]])
            .unwrap();
        let _ = session.report();
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.component_stats().full_builds, 1);
    }

    #[test]
    fn late_evidence_can_flip_an_earlier_repair() {
        // First batches: "Cicago" is the 60608 majority, so the lone
        // "Chicago" looks wrong. Later batches flip the majority — the
        // affected-set recompute must revisit the old cells.
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City"]),
            "FD: Zip -> City",
            HoloConfig::default().with_threads(1),
        )
        .unwrap();
        let early: Vec<Vec<String>> = vec![
            vec!["60608".into(), "Cicago".into()],
            vec!["60608".into(), "Cicago".into()],
            vec!["60608".into(), "Chicago".into()],
        ];
        session.push_batch(&early).unwrap();
        let late: Vec<Vec<String>> = (0..6)
            .map(|_| vec!["60608".to_string(), "Chicago".to_string()])
            .collect();
        session.push_batch(&late).unwrap();
        let report = session.report();
        // One-shot over the union agrees byte for byte.
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        for row in early.iter().chain(&late) {
            ds.push_row(row);
        }
        let reference = HoloClean::new(ds)
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .run()
            .unwrap()
            .report;
        assert_eq!(report, reference);
        assert!(report.repairs.iter().any(|r| r.new_value == "Chicago"));
    }

    #[test]
    fn unsupported_configs_and_bad_batches_are_typed_errors() {
        let schema = Schema::new(vec!["Zip", "City"]);
        // DC-factor variants are no longer rejected — retirement plus
        // compaction made them streamable.
        for variant in [ModelVariant::DcFactors, ModelVariant::DcFeatsDcFactors] {
            StreamSession::new(
                schema.clone(),
                "FD: Zip -> City",
                HoloConfig::default().with_variant(variant),
            )
            .expect("DC-factor variants stream via compaction");
        }
        let err = StreamSession::new(
            schema.clone(),
            "FD: Zip -> City",
            HoloConfig::default().with_source("a", "b"),
        )
        .map(|_| ())
        .expect_err("source features are rejected");
        assert!(matches!(err, HoloError::Stream(_)));

        let mut session =
            StreamSession::new(schema, "FD: Zip -> City", HoloConfig::default()).unwrap();
        let err = session
            .push_batch(&[vec!["only-one".to_string()]])
            .expect_err("arity mismatch is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");
        assert_eq!(session.dataset().tuple_count(), 0, "nothing was appended");
    }

    #[test]
    fn bad_mutation_batches_are_typed_errors() {
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City"]),
            "FD: Zip -> City",
            HoloConfig::default(),
        )
        .unwrap();
        session
            .push_batch(&[vec!["60608".to_string(), "Chicago".to_string()]])
            .unwrap();

        let err = session
            .push_deletes(&[TupleId(7)])
            .expect_err("out-of-range delete is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");
        let err = session
            .push_deletes(&[TupleId(0), TupleId(0)])
            .expect_err("repeated row in one batch is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");
        let err = session
            .push_updates(&[(TupleId(0), vec!["only-one".to_string()])])
            .expect_err("update arity mismatch is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");

        session.push_deletes(&[TupleId(0)]).unwrap();
        let err = session
            .push_updates(&[(TupleId(0), vec!["a".to_string(), "b".to_string()])])
            .expect_err("update of a tombstoned row is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");
        let err = session
            .push_deletes(&[TupleId(0)])
            .expect_err("double delete is rejected");
        assert!(matches!(err, HoloError::Stream(_)), "{err}");
    }

    /// Drives one session through an interleaved insert/update/delete
    /// feed while maintaining the live table in a plain mirror, then
    /// checks the session's exact read against a one-shot run over the
    /// mirror. Returns the session for further inspection.
    fn crud_feed(config: HoloConfig) -> (StreamSession, Vec<Vec<String>>) {
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City", "State"]),
            "FD: Zip -> City",
            config,
        )
        .unwrap();
        let rows = zip_city_rows();
        let mut mirror: Vec<Option<Vec<String>>> = Vec::new();
        let push = |session: &mut StreamSession,
                    mirror: &mut Vec<Option<Vec<String>>>,
                    batch: &[Vec<String>]| {
            session.push_batch(batch).unwrap();
            mirror.extend(batch.iter().cloned().map(Some));
        };

        // Rows 0..6 plus two decoys destined for deletion.
        let decoy = vec!["99999".to_string(), "Nowhere".to_string(), "ZZ".to_string()];
        let mut first: Vec<Vec<String>> = rows[..6].to_vec();
        first.push(decoy.clone());
        first.push(decoy.clone());
        push(&mut session, &mut mirror, &first);
        session.push_deletes(&[TupleId(6), TupleId(7)]).unwrap();
        mirror[6] = None;
        mirror[7] = None;

        // The rest of the feed, with the "Cicago" row initially mangled
        // further ("Cicagoo") and repaired to its intended form by an
        // update.
        let mut second: Vec<Vec<String>> = rows[6..].to_vec();
        assert_eq!(second[2][1], "Cicago");
        second[2][1] = "Cicagoo".to_string();
        push(&mut session, &mut mirror, &second);
        let mangled = TupleId(10);
        let fixed = vec!["60608".to_string(), "Cicago".to_string(), "IL".to_string()];
        session.push_updates(&[(mangled, fixed.clone())]).unwrap();
        mirror[10] = Some(fixed);

        // Delete an early clean row too, so live ranks shift under the
        // report remap.
        session.push_deletes(&[TupleId(2)]).unwrap();
        mirror[2] = None;

        let live: Vec<Vec<String>> = mirror.into_iter().flatten().collect();
        (session, live)
    }

    #[test]
    fn interleaved_crud_matches_one_shot_over_live_table_bitwise() {
        let reference = {
            let (mut session, live) = crud_feed(HoloConfig::default().with_threads(1));
            let report = session.report();
            let one = one_shot(&live, 1);
            assert_eq!(report, one);
            assert!(!report.repairs.is_empty(), "the feed must need repairs");
            report
        };
        for threads in [2, 4] {
            let (mut session, live) = crud_feed(HoloConfig::default().with_threads(threads));
            assert_eq!(session.report(), reference, "threads = {threads}");
            assert_eq!(one_shot(&live, threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn retraction_compacts_lazily_on_the_exact_read() {
        let (mut session, _) = crud_feed(HoloConfig::default().with_threads(1));
        // Mutations patched in place: still exactly one full build each.
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.component_stats().full_builds, 1);
        let retire = session.retire_stats();
        assert_eq!(retire.compactions, 0);
        assert_eq!(retire.dead_rows, 3);
        let _ = session.report();
        // The dirty exact read paid the one amortised rebuild.
        assert_eq!(session.design_stats().full_builds, 2);
        assert_eq!(session.component_stats().full_builds, 2);
        let retire = session.retire_stats();
        assert_eq!(retire.compactions, 1);
        assert!(retire.vars_renumbered > 0);
        // A second read is served from cache.
        let _ = session.report();
        assert_eq!(session.retire_stats().compactions, 1);
        assert_eq!(session.design_stats().full_builds, 2);
    }

    #[test]
    fn scheduled_compaction_ticks_are_the_only_full_rebuilds() {
        let rows = zip_city_rows();
        let mut config = HoloConfig::default().with_threads(1);
        config.stream.compact_every = 2;
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City", "State"]),
            "FD: Zip -> City",
            config,
        )
        .unwrap();
        session.push_batch(&rows[..6]).unwrap(); // batch 1
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.retire_stats().compactions, 0);
        session.push_batch(&rows[6..]).unwrap(); // batch 2 → tick
        assert_eq!(session.design_stats().full_builds, 2);
        assert_eq!(session.retire_stats().compactions, 1);
        session.push_deletes(&[TupleId(0)]).unwrap(); // batch 3: frozen
        assert_eq!(session.design_stats().full_builds, 2);
        session.push_batch(&rows[..1]).unwrap(); // batch 4 → tick
        assert_eq!(session.design_stats().full_builds, 3);
        assert_eq!(session.component_stats().full_builds, 3);
        assert_eq!(session.retire_stats().compactions, 2);
        // The tick cleared the delete's dirty flag: the exact read needs
        // no further rebuild, and it matches the one-shot run.
        let report = session.report();
        assert_eq!(session.design_stats().full_builds, 3);
        let mut live: Vec<Vec<String>> = rows[1..].to_vec();
        live.push(rows[0].clone());
        assert_eq!(report, one_shot(&live, 1));
    }

    #[test]
    fn sustained_crud_holds_steady_state_graph_size() {
        let rows = zip_city_rows();
        let mut config = HoloConfig::default().with_threads(1);
        config.stream.compact_every = 2;
        let mut session = StreamSession::new(
            Schema::new(vec!["Zip", "City", "State"]),
            "FD: Zip -> City",
            config,
        )
        .unwrap();
        session.push_batch(&rows).unwrap();
        // Baseline = the compacted live model (delta compile may pin a
        // few extra retired vars that only compaction renumbers away).
        session.compact().unwrap();
        let baseline_vars = session.graph.var_count();
        let baseline_factors = session.graph.factor_count();
        // Sustained churn: every round inserts a noisy row, heals it, and
        // deletes it again, so the live table keeps returning to `rows`.
        for _ in 0..6 {
            let id = session.ds.tuple_count() as u32;
            session
                .push_batch(&[vec![
                    "60609".to_string(),
                    "Evanstn".to_string(),
                    "IL".to_string(),
                ]])
                .unwrap();
            session
                .push_updates(&[(
                    TupleId(id),
                    vec![
                        "60609".to_string(),
                        "Evanston".to_string(),
                        "IL".to_string(),
                    ],
                )])
                .unwrap();
            session.push_deletes(&[TupleId(id)]).unwrap();
        }
        let report = session.report();
        // After the churn (and its compaction ticks) the graph holds
        // exactly the live model again — no monotone growth.
        assert_eq!(session.graph.var_count(), baseline_vars);
        assert_eq!(session.graph.factor_count(), baseline_factors);
        assert_eq!(session.graph.retired_clique_count(), 0);
        let retire = session.retire_stats();
        assert!(retire.compactions >= 1, "the schedule must have ticked");
        assert!(retire.vars_renumbered > 0);
        assert_eq!(report, one_shot(&rows, 1));
    }

    #[test]
    fn dc_factor_variants_stream_via_retirement_and_compaction() {
        let rows = zip_city_rows();
        for variant in [
            ModelVariant::DcFactors,
            ModelVariant::DcFeatsDcFactorsPartitioned,
        ] {
            let config = HoloConfig::default().with_threads(1).with_variant(variant);
            let mut session = StreamSession::new(
                Schema::new(vec!["Zip", "City", "State"]),
                "FD: Zip -> City",
                config.clone(),
            )
            .unwrap();
            for chunk in rows.chunks(5) {
                session.push_batch(chunk).unwrap();
            }
            // Exact read == one-shot under the clique-grounding variant.
            let report = session.report();
            let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
            for row in &rows {
                ds.push_row(row);
            }
            let reference = HoloClean::new(ds)
                .with_constraint_text("FD: Zip -> City")
                .unwrap()
                .with_config(config.clone())
                .run()
                .unwrap()
                .report;
            assert_eq!(report, reference, "variant {variant:?}");
            assert!(session.compile_stats().cliques > 0, "cliques grounded");

            // Deleting a violation endpoint retires its cliques in place.
            let cicago = TupleId(8);
            session.push_deletes(&[cicago]).unwrap();
            assert!(
                session.retire_stats().cliques_retired > 0,
                "variant {variant:?} retires cliques"
            );
            // And the next exact read recompacts to the one-shot answer.
            let report = session.report();
            let mut live: Vec<Vec<String>> = rows.clone();
            live.remove(8);
            let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
            for row in &live {
                ds.push_row(row);
            }
            let reference = HoloClean::new(ds)
                .with_constraint_text("FD: Zip -> City")
                .unwrap()
                .with_config(config)
                .run()
                .unwrap()
                .report;
            assert_eq!(report, reference, "variant {variant:?} after delete");
        }
    }

    #[test]
    fn updates_can_introduce_and_remove_violations() {
        let rows = zip_city_rows();
        let mut session = streamed(&rows, 3, 1);
        // Rewrite a clean Evanston row into a fresh 60608 conflict.
        session
            .push_updates(&[(
                TupleId(9),
                vec!["60608".to_string(), "Evanstn".to_string(), "IL".to_string()],
            )])
            .unwrap();
        let mut live = rows.clone();
        live[9] = vec!["60608".into(), "Evanstn".into(), "IL".into()];
        assert_eq!(session.report(), one_shot(&live, 1));
        // Rewrite it back: the violation retracts.
        session
            .push_updates(&[(TupleId(9), rows[9].clone())])
            .unwrap();
        assert_eq!(session.report(), one_shot(&rows, 1));
    }

    #[test]
    fn force_full_rebuild_produces_identical_output() {
        let rows = zip_city_rows();
        let mut fast = streamed(&rows, 4, 1);
        let mut slow = {
            let mut config = HoloConfig::default().with_threads(1);
            config.stream.force_full_rebuild = true;
            let mut session = StreamSession::new(
                Schema::new(vec!["Zip", "City", "State"]),
                "FD: Zip -> City",
                config,
            )
            .unwrap();
            for chunk in rows.chunks(rows.len().div_ceil(4)) {
                session.push_batch(chunk).unwrap();
            }
            session
        };
        assert_eq!(fast.report(), slow.report());
        assert_eq!(fast.design_stats().full_builds, 1, "patched path");
        assert!(
            slow.design_stats().full_builds > 1,
            "rebuild path recompiles per batch"
        );
    }

    #[test]
    fn interim_report_tracks_new_evidence_between_batches() {
        let rows = zip_city_rows();
        let mut session = streamed(&rows, 3, 1);
        let interim = session.interim_report();
        let exact = session.report();
        // Interim serves the same cells, with (possibly) different
        // posterior mass: same posterior count, approximate weights.
        assert_eq!(interim.posteriors.len(), exact.posteriors.len());
        assert!(session.ingest_stats().replay_minibatches > 0);
    }

    use proptest::prelude::*;

    fn crud_row(z: u8, c: u8) -> Vec<String> {
        let zips = ["60608", "60609"];
        let cities = ["Chicago", "Cicago", "Evanston"];
        vec![
            zips[z as usize % zips.len()].to_string(),
            cities[c as usize % cities.len()].to_string(),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Arbitrary insert/update/delete/compact interleavings serve
        /// exact reads bit-for-bit equal to a from-scratch build over the
        /// live table, and every `full_builds` tick is a compaction tick.
        /// Each op is `(kind, sel, n, z, c)`: kind 0 inserts `n` rows
        /// derived from `(z, c)`, kind 1 updates the live row selected by
        /// `sel`, kind 2 deletes it.
        #[test]
        fn prop_interleaved_crud_matches_a_fresh_build(
            ops in proptest::collection::vec((0u8..3, 0u8..16, 1u8..4, 0u8..2, 0u8..3), 1..8),
            compact_every in 0usize..3,
        ) {
            let mut config = HoloConfig::default().with_threads(1);
            config.stream.compact_every = compact_every;
            let mut session = StreamSession::new(
                Schema::new(vec!["Zip", "City"]),
                "FD: Zip -> City",
                config,
            ).unwrap();
            let mut live_ids: Vec<TupleId> = Vec::new();
            let mut mirror: Vec<Vec<String>> = Vec::new();
            let mut pushed = false;
            for (kind, sel, n, z, c) in ops {
                match kind {
                    0 => {
                        let batch: Vec<Vec<String>> = (0..n)
                            .map(|i| crud_row(z.wrapping_add(i), c.wrapping_add(i)))
                            .collect();
                        let before = session.dataset().tuple_count();
                        session.push_batch(&batch).unwrap();
                        for (i, row) in batch.into_iter().enumerate() {
                            live_ids.push(TupleId((before + i) as u32));
                            mirror.push(row);
                        }
                        pushed = true;
                    }
                    1 => {
                        if live_ids.is_empty() {
                            continue;
                        }
                        let idx = sel as usize % live_ids.len();
                        let row = crud_row(z, c);
                        session.push_updates(&[(live_ids[idx], row.clone())]).unwrap();
                        mirror[idx] = row;
                    }
                    _ => {
                        if live_ids.is_empty() {
                            continue;
                        }
                        let idx = sel as usize % live_ids.len();
                        session.push_deletes(&[live_ids[idx]]).unwrap();
                        live_ids.remove(idx);
                        mirror.remove(idx);
                    }
                }
                if pushed {
                    // Every full build after the first is a compaction.
                    let compactions = session.retire_stats().compactions;
                    prop_assert_eq!(session.design_stats().full_builds, 1 + compactions);
                    prop_assert_eq!(session.component_stats().full_builds, 1 + compactions);
                }
            }
            let streamed = session.report();
            let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
            for row in &mirror {
                ds.push_row(row);
            }
            let fresh = HoloClean::new(ds)
                .with_constraint_text("FD: Zip -> City")
                .unwrap()
                .run()
                .unwrap()
                .report;
            prop_assert_eq!(streamed, fresh);
            if pushed {
                let compactions = session.retire_stats().compactions;
                prop_assert_eq!(session.design_stats().full_builds, 1 + compactions);
            }
        }
    }
}
