//! Repair extraction: from marginals to cell updates.

use holo_dataset::{CellRef, Dataset, Sym};
use holo_factor::{Marginals, VarId};
use serde::{Deserialize, Serialize};

/// One proposed repair `v̂_c` with its marginal probability — the paper's
/// "rigorous semantics" (§2.2): a 0.6 probability means HoloClean is 60%
/// confident in the repair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repair {
    /// The repaired cell.
    pub cell: CellRef,
    /// The original (observed) symbol.
    pub old: Sym,
    /// The proposed symbol.
    pub new: Sym,
    /// The original value as a string.
    pub old_value: String,
    /// The proposed value as a string.
    pub new_value: String,
    /// Marginal probability of the proposed value.
    pub probability: f64,
}

/// Posterior of one noisy cell: every candidate with its marginal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellPosterior {
    /// The cell.
    pub cell: CellRef,
    /// `(candidate, probability)` pairs, in domain order.
    pub candidates: Vec<(Sym, f64)>,
}

/// The full output of the repair stage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Cells whose MAP value differs from the observation.
    pub repairs: Vec<Repair>,
    /// Posteriors of *all* query cells (repaired or kept) — the "marginal
    /// distribution of cell assignments" of Figure 2, and the input to the
    /// Figure 6 confidence analysis.
    pub posteriors: Vec<CellPosterior>,
}

impl RepairReport {
    /// Builds the report from inferred marginals.
    pub fn from_marginals(
        ds: &Dataset,
        query_cells: &[CellRef],
        query_vars: &[VarId],
        graph: &holo_factor::FactorGraph,
        marginals: &Marginals,
    ) -> Self {
        let mut repairs = Vec::new();
        let mut posteriors = Vec::with_capacity(query_cells.len());
        for (&cell, &var) in query_cells.iter().zip(query_vars) {
            let domain = &graph.var(var).domain;
            let probs = marginals.probs(var);
            posteriors.push(CellPosterior {
                cell,
                candidates: domain.iter().copied().zip(probs.iter().copied()).collect(),
            });
            let (k, p) = marginals.map_candidate(var);
            let new = domain[k];
            let old = ds.cell_ref(cell);
            if new != old {
                repairs.push(Repair {
                    cell,
                    old,
                    new,
                    old_value: ds.value_str(old).to_string(),
                    new_value: ds.value_str(new).to_string(),
                    probability: p,
                });
            }
        }
        RepairReport {
            repairs,
            posteriors,
        }
    }

    /// Applies every repair to a copy of `ds` and returns it.
    pub fn apply(&self, ds: &Dataset) -> Dataset {
        let mut out = ds.snapshot();
        for r in &self.repairs {
            out.set_cell(r.cell.tuple, r.cell.attr, r.new);
        }
        out
    }

    /// Number of performed repairs.
    pub fn repair_count(&self) -> usize {
        self.repairs.len()
    }

    /// Serialises the repairs as CSV
    /// (`tuple,attribute,old_value,new_value,probability`) for downstream
    /// review tooling — the artifact a data steward audits.
    pub fn repairs_to_csv(&self, ds: &Dataset) -> String {
        let escape = |field: &str| -> String {
            if field.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        };
        let mut out = String::from("tuple,attribute,old_value,new_value,probability\n");
        for r in &self.repairs {
            out.push_str(&format!(
                "{},{},{},{},{:.6}\n",
                r.cell.tuple.index(),
                escape(ds.schema().attr_name(r.cell.attr)),
                escape(&r.old_value),
                escape(&r.new_value),
                r.probability
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_dataset::Schema;
    use holo_factor::{FactorGraph, Variable};

    #[test]
    fn map_differing_from_init_becomes_repair() {
        let mut ds = Dataset::new(Schema::new(vec!["City"]));
        ds.push_row(&["Cicago"]);
        let cicago = ds.pool().get("Cicago").unwrap();
        let chicago = ds.intern("Chicago");
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query(vec![cicago, chicago], Some(0)));
        let cell = CellRef::new(0usize, 0usize);
        let marginals = Marginals::from_raw(vec![vec![0.2, 0.8]]);
        let report = RepairReport::from_marginals(&ds, &[cell], &[v], &g, &marginals);
        assert_eq!(report.repairs.len(), 1);
        let r = &report.repairs[0];
        assert_eq!(r.new_value, "Chicago");
        assert_eq!(r.old_value, "Cicago");
        assert!((r.probability - 0.8).abs() < 1e-12);
        assert_eq!(report.posteriors.len(), 1);
    }

    #[test]
    fn map_equal_to_init_is_not_a_repair() {
        let mut ds = Dataset::new(Schema::new(vec!["City"]));
        ds.push_row(&["Chicago"]);
        let chicago = ds.pool().get("Chicago").unwrap();
        let other = ds.intern("Cicago");
        let mut g = FactorGraph::new();
        let v = g.add_variable(Variable::query(vec![chicago, other], Some(0)));
        let cell = CellRef::new(0usize, 0usize);
        let marginals = Marginals::from_raw(vec![vec![0.9, 0.1]]);
        let report = RepairReport::from_marginals(&ds, &[cell], &[v], &g, &marginals);
        assert!(report.repairs.is_empty());
        assert_eq!(report.posteriors.len(), 1, "posterior still recorded");
    }

    #[test]
    fn csv_export_roundtrips_through_the_csv_parser() {
        let mut ds = Dataset::new(Schema::new(vec!["City", "Notes"]));
        ds.push_row(&["Cicago", "has,comma"]);
        let chicago = ds.intern("Chicago");
        let cell = CellRef::new(0usize, 0usize);
        let report = RepairReport {
            repairs: vec![Repair {
                cell,
                old: ds.cell_ref(cell),
                new: chicago,
                old_value: "Cicago".into(),
                new_value: "Chicago".into(),
                probability: 0.875,
            }],
            posteriors: vec![],
        };
        let csv_text = report.repairs_to_csv(&ds);
        let parsed = holo_dataset::csv::parse_dataset(&csv_text).unwrap();
        assert_eq!(parsed.tuple_count(), 1);
        assert_eq!(parsed.cell_str(0.into(), 1.into()), "City");
        assert_eq!(parsed.cell_str(0.into(), 3.into()), "Chicago");
        assert_eq!(parsed.cell_str(0.into(), 4.into()), "0.875000");
    }

    #[test]
    fn apply_materialises_repairs() {
        let mut ds = Dataset::new(Schema::new(vec!["City"]));
        ds.push_row(&["Cicago"]);
        let chicago = ds.intern("Chicago");
        let cell = CellRef::new(0usize, 0usize);
        let report = RepairReport {
            repairs: vec![Repair {
                cell,
                old: ds.cell_ref(cell),
                new: chicago,
                old_value: "Cicago".into(),
                new_value: "Chicago".into(),
                probability: 0.9,
            }],
            posteriors: vec![],
        };
        let fixed = report.apply(&ds);
        assert_eq!(fixed.cell_str(0.into(), 0.into()), "Chicago");
        // The original is untouched.
        assert_eq!(ds.cell_str(0.into(), 0.into()), "Cicago");
    }
}
