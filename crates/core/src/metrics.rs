//! Repair-quality metrics (§6.1 "Evaluation Methodology").
//!
//! * **Precision** — correct repairs / performed repairs.
//! * **Recall** — correct repairs / total errors.
//! * **F1** — `2PR / (P + R)`.
//!
//! A repair is *correct* when the proposed value equals the ground truth
//! for a cell whose observed value differed from the truth. Changing an
//! already-correct cell counts against precision.

use crate::repair::RepairReport;
use holo_dataset::{CellRef, Dataset};
use serde::{Deserialize, Serialize};

/// Precision/recall/F1 plus the raw tallies behind them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairQuality {
    /// Correct repairs / performed repairs (1.0 when nothing was repaired).
    pub precision: f64,
    /// Correct repairs / total errors (1.0 when the data had no errors).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Repairs matching the ground truth.
    pub correct_repairs: usize,
    /// Repairs performed.
    pub total_repairs: usize,
    /// Erroneous cells in the dirty dataset.
    pub total_errors: usize,
}

impl RepairQuality {
    fn from_counts(correct: usize, repairs: usize, errors: usize) -> Self {
        let precision = if repairs == 0 {
            1.0
        } else {
            correct as f64 / repairs as f64
        };
        let recall = if errors == 0 {
            1.0
        } else {
            correct as f64 / errors as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        RepairQuality {
            precision,
            recall,
            f1,
            correct_repairs: correct,
            total_repairs: repairs,
            total_errors: errors,
        }
    }
}

/// Evaluates a repair report against ground truth over all cells.
///
/// `dirty` is the original dataset, `truth` the clean version (same schema
/// and tuple order; value comparison is by string so the two datasets may
/// use different pools).
pub fn evaluate(report: &RepairReport, dirty: &Dataset, truth: &Dataset) -> RepairQuality {
    evaluate_subset(report, dirty, truth, None)
}

/// Evaluates on a labelled subset of cells (the paper labels 2 000 cells
/// for Food and 2 500 for Physicians); `None` evaluates on all cells.
pub fn evaluate_subset(
    report: &RepairReport,
    dirty: &Dataset,
    truth: &Dataset,
    subset: Option<&[CellRef]>,
) -> RepairQuality {
    assert_eq!(
        dirty.tuple_count(),
        truth.tuple_count(),
        "tuple count mismatch"
    );
    assert_eq!(
        dirty.schema().len(),
        truth.schema().len(),
        "schema arity mismatch"
    );
    let in_subset = |cell: &CellRef| -> bool {
        match subset {
            Some(cells) => cells.contains(cell),
            None => true,
        }
    };
    // Total errors.
    let mut errors = 0usize;
    match subset {
        Some(cells) => {
            for cell in cells {
                if dirty.cell_str(cell.tuple, cell.attr) != truth.cell_str(cell.tuple, cell.attr) {
                    errors += 1;
                }
            }
        }
        None => {
            for cell in dirty.cells() {
                if dirty.cell_str(cell.tuple, cell.attr) != truth.cell_str(cell.tuple, cell.attr) {
                    errors += 1;
                }
            }
        }
    }
    // Repairs.
    let mut correct = 0usize;
    let mut total = 0usize;
    for r in &report.repairs {
        if !in_subset(&r.cell) {
            continue;
        }
        total += 1;
        let truth_value = truth.cell_str(r.cell.tuple, r.cell.attr);
        let was_wrong = dirty.cell_str(r.cell.tuple, r.cell.attr) != truth_value;
        if was_wrong && r.new_value == truth_value {
            correct += 1;
        }
    }
    RepairQuality::from_counts(correct, total, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::Repair;
    use holo_dataset::Schema;

    fn pair() -> (Dataset, Dataset) {
        let mut dirty = Dataset::new(Schema::new(vec!["City", "State"]));
        dirty.push_row(&["Cicago", "IL"]); // error in City
        dirty.push_row(&["Boston", "MA"]); // clean
        dirty.push_row(&["Denver", "XX"]); // error in State
        let mut truth = Dataset::new(Schema::new(vec!["City", "State"]));
        truth.push_row(&["Chicago", "IL"]);
        truth.push_row(&["Boston", "MA"]);
        truth.push_row(&["Denver", "CO"]);
        (dirty, truth)
    }

    fn repair(dirty: &mut Dataset, t: usize, a: usize, new: &str, p: f64) -> Repair {
        let cell = CellRef::new(t, a);
        let old = dirty.cell_ref(cell);
        let new_sym = dirty.intern(new);
        Repair {
            cell,
            old,
            new: new_sym,
            old_value: dirty.value_str(old).to_string(),
            new_value: new.to_string(),
            probability: p,
        }
    }

    #[test]
    fn perfect_repairs() {
        let (mut dirty, truth) = pair();
        let report = RepairReport {
            repairs: vec![
                repair(&mut dirty, 0, 0, "Chicago", 0.9),
                repair(&mut dirty, 2, 1, "CO", 0.8),
            ],
            posteriors: vec![],
        };
        let q = evaluate(&report, &dirty, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1, 1.0);
        assert_eq!(q.total_errors, 2);
    }

    #[test]
    fn wrong_repair_hurts_precision() {
        let (mut dirty, truth) = pair();
        let report = RepairReport {
            repairs: vec![
                repair(&mut dirty, 0, 0, "Chicago", 0.9), // correct
                repair(&mut dirty, 1, 0, "Austin", 0.6),  // damages a clean cell
            ],
            posteriors: vec![],
        };
        let q = evaluate(&report, &dirty, &truth);
        assert!((q.precision - 0.5).abs() < 1e-12);
        assert!((q.recall - 0.5).abs() < 1e-12);
        assert_eq!(q.correct_repairs, 1);
    }

    #[test]
    fn no_repairs_on_dirty_data() {
        let (dirty, truth) = pair();
        let report = RepairReport::default();
        let q = evaluate(&report, &dirty, &truth);
        assert_eq!(q.precision, 1.0, "vacuous precision");
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn clean_data_no_repairs_is_perfect() {
        let (_, truth) = pair();
        let report = RepairReport::default();
        let q = evaluate(&report, &truth, &truth);
        assert_eq!(q.f1, 1.0);
        assert_eq!(q.total_errors, 0);
    }

    #[test]
    fn subset_evaluation() {
        let (mut dirty, truth) = pair();
        let report = RepairReport {
            repairs: vec![
                repair(&mut dirty, 0, 0, "Chicago", 0.9),
                repair(&mut dirty, 2, 1, "CO", 0.8),
            ],
            posteriors: vec![],
        };
        // Subset covering only tuple 0 cells: the State repair is invisible.
        let subset = vec![CellRef::new(0usize, 0usize), CellRef::new(0usize, 1usize)];
        let q = evaluate_subset(&report, &dirty, &truth, Some(&subset));
        assert_eq!(q.total_repairs, 1);
        assert_eq!(q.total_errors, 1);
        assert_eq!(q.f1, 1.0);
    }

    #[test]
    fn repair_to_wrong_value_on_erroneous_cell() {
        let (mut dirty, truth) = pair();
        let report = RepairReport {
            repairs: vec![repair(&mut dirty, 0, 0, "Springfield", 0.7)],
            posteriors: vec![],
        };
        let q = evaluate(&report, &dirty, &truth);
        assert_eq!(q.correct_repairs, 0);
        assert_eq!(q.precision, 0.0);
    }
}
