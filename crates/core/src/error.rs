//! Error type of the HoloClean pipeline.

use std::fmt;

/// Pipeline errors.
#[derive(Debug, Clone, PartialEq)]
pub enum HoloError {
    /// Dataset-layer failure (schema lookup, CSV, …).
    Dataset(holo_dataset::DatasetError),
    /// Constraint parse/bind failure.
    Constraint(String),
    /// Configuration problem (e.g. source attribute missing).
    Config(String),
    /// Stage-contract violation in a custom pipeline (e.g. Learn scheduled
    /// before Compile produced a model).
    Pipeline(String),
}

impl fmt::Display for HoloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoloError::Dataset(e) => write!(f, "dataset error: {e}"),
            HoloError::Constraint(msg) => write!(f, "constraint error: {msg}"),
            HoloError::Config(msg) => write!(f, "configuration error: {msg}"),
            HoloError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for HoloError {}

impl From<holo_dataset::DatasetError> for HoloError {
    fn from(e: holo_dataset::DatasetError) -> Self {
        HoloError::Dataset(e)
    }
}

impl From<holo_constraints::ParseError> for HoloError {
    fn from(e: holo_constraints::ParseError) -> Self {
        HoloError::Constraint(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = HoloError::Config("bad".into());
        assert!(e.to_string().contains("configuration"));
        let e: HoloError = holo_dataset::DatasetError::EmptyInput.into();
        assert!(matches!(e, HoloError::Dataset(_)));
    }
}
