//! Error type of the HoloClean pipeline.

use holo_dataset::CellRef;
use std::fmt;

/// Pipeline errors.
#[derive(Debug, Clone, PartialEq)]
pub enum HoloError {
    /// Dataset-layer failure (schema lookup, CSV, …).
    Dataset(holo_dataset::DatasetError),
    /// Constraint parse/bind failure.
    Constraint(String),
    /// Configuration problem (e.g. source attribute missing).
    Config(String),
    /// Stage-contract violation in a custom pipeline (e.g. Learn scheduled
    /// before Compile produced a model).
    Pipeline(String),
    /// Streaming-ingestion failure: an unsupported model variant for the
    /// incremental engine, a malformed batch (arity mismatch), or an
    /// out-of-order ingest.
    Stream(String),
    /// Algorithm 2 pruning dropped a cell's own observed value from its
    /// candidate domain — a pathological pruning configuration (the
    /// compiler's invariant is that the initial value always survives).
    /// Carries the offending cell and its attribute name so the broken
    /// configuration is diagnosable instead of a crash.
    PrunedInitialValue {
        /// The cell whose observed value vanished from its domain.
        cell: CellRef,
        /// Name of the cell's attribute.
        attr: String,
    },
}

impl fmt::Display for HoloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoloError::Dataset(e) => write!(f, "dataset error: {e}"),
            HoloError::Constraint(msg) => write!(f, "constraint error: {msg}"),
            HoloError::Config(msg) => write!(f, "configuration error: {msg}"),
            HoloError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
            HoloError::Stream(msg) => write!(f, "streaming error: {msg}"),
            HoloError::PrunedInitialValue { cell, attr } => write!(
                f,
                "compile error: pruning removed the observed value of cell {cell} \
                 (attribute {attr:?}) from its own domain — the pruning \
                 configuration is inconsistent"
            ),
        }
    }
}

impl std::error::Error for HoloError {}

impl From<holo_dataset::DatasetError> for HoloError {
    fn from(e: holo_dataset::DatasetError) -> Self {
        HoloError::Dataset(e)
    }
}

impl From<holo_constraints::ParseError> for HoloError {
    fn from(e: holo_constraints::ParseError) -> Self {
        HoloError::Constraint(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = HoloError::Config("bad".into());
        assert!(e.to_string().contains("configuration"));
        let e: HoloError = holo_dataset::DatasetError::EmptyInput.into();
        assert!(matches!(e, HoloError::Dataset(_)));
    }

    #[test]
    fn pruned_initial_value_names_the_cell() {
        let e = HoloError::PrunedInitialValue {
            cell: CellRef {
                tuple: 7usize.into(),
                attr: 2usize.into(),
            },
            attr: "City".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.contains("City"), "{msg}");
        assert!(msg.contains("pruning"), "{msg}");
    }
}
