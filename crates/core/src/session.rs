//! The HoloClean session: a builder plus a thin driver over the staged
//! engine in [`crate::pipeline`] (Figure 2).

use crate::compile::{CompileStats, CompiledModel};
use crate::config::HoloConfig;
use crate::error::HoloError;
use crate::features::MatchLookup;
use crate::pipeline::{Pipeline, PipelineContext};
use crate::repair::RepairReport;
use holo_constraints::{parse_constraints, ConstraintSet};
use holo_dataset::{CellRef, Dataset, FxHashSet};
use holo_detect::Detector;
use holo_external::{DictId, ExtDict, Matcher, MatchingDependency};
use holo_factor::LearnStats;
use std::time::Instant;

pub use crate::pipeline::StageTimings;

/// Everything a run produces.
#[derive(Debug)]
pub struct RepairOutcome {
    /// The input dataset (values untouched; pool may contain extra interned
    /// candidates from dictionaries).
    pub dataset: Dataset,
    /// A copy of the dataset with all repairs applied.
    pub repaired: Dataset,
    /// Repairs and posteriors.
    pub report: RepairReport,
    /// Stage timings.
    pub timings: StageTimings,
    /// Model-shape diagnostics.
    pub model: CompileStats,
    /// Learning diagnostics.
    pub learn_stats: Option<LearnStats>,
    /// Number of detected violations.
    pub violations: usize,
    /// Number of noisy cells (`|D_n|`).
    pub noisy_cells: usize,
}

/// Builder + runner for one repair session.
///
/// ```
/// use holo_dataset::{Dataset, Schema};
/// use holoclean::HoloClean;
///
/// let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
/// for _ in 0..8 { ds.push_row(&["60608", "Chicago", "IL"]); }
/// for _ in 0..5 { ds.push_row(&["60609", "Evanston", "IL"]); }
/// ds.push_row(&["60608", "Cicago", "IL"]);
/// let outcome = HoloClean::new(ds)
///     .with_constraint_text("FD: Zip -> City").unwrap()
///     .run().unwrap();
/// assert_eq!(outcome.report.repairs.len(), 1);
/// ```
pub struct HoloClean {
    ds: Dataset,
    constraints: ConstraintSet,
    dicts: Vec<(ExtDict, Vec<MatchingDependency>)>,
    extra_detectors: Vec<Box<dyn Detector + Send + Sync>>,
    noisy_override: Option<FxHashSet<CellRef>>,
    config: HoloConfig,
}

impl HoloClean {
    /// Starts a session over `ds` with default configuration and no
    /// constraints.
    pub fn new(ds: Dataset) -> Self {
        HoloClean {
            ds,
            constraints: ConstraintSet::new(),
            dicts: Vec::new(),
            extra_detectors: Vec::new(),
            noisy_override: None,
            config: HoloConfig::default(),
        }
    }

    /// Parses and appends constraints (DC lines and/or `FD:` sugar).
    pub fn with_constraint_text(mut self, text: &str) -> Result<Self, HoloError> {
        let parsed = parse_constraints(text, &mut self.ds)?;
        for (_, c) in parsed.iter() {
            self.constraints.push(c.clone());
        }
        Ok(self)
    }

    /// Appends an already-built constraint set.
    pub fn with_constraints(mut self, set: ConstraintSet) -> Self {
        for (_, c) in set.iter() {
            self.constraints.push(c.clone());
        }
        self
    }

    /// Registers an external dictionary with its matching dependencies.
    pub fn with_dictionary(mut self, dict: ExtDict, deps: Vec<MatchingDependency>) -> Self {
        self.dicts.push((dict, deps));
        self
    }

    /// Adds an extra error detector (unioned with violation detection).
    pub fn with_detector(mut self, d: impl Detector + Send + Sync + 'static) -> Self {
        self.extra_detectors.push(Box::new(d));
        self
    }

    /// Overrides detection entirely with a fixed noisy-cell set.
    pub fn with_noisy_cells(mut self, cells: FxHashSet<CellRef>) -> Self {
        self.noisy_override = Some(cells);
        self
    }

    /// Sets the configuration.
    pub fn with_config(mut self, config: HoloConfig) -> Self {
        self.config = config;
        self
    }

    /// Read access to the dataset (e.g. to look up attribute ids).
    pub fn dataset(&self) -> &Dataset {
        &self.ds
    }

    /// Executes the pipeline: detect → compile → learn → infer → repair.
    pub fn run(self) -> Result<RepairOutcome, HoloError> {
        self.run_full().map(|(outcome, _, _)| outcome)
    }

    /// Like [`HoloClean::run`] but also returns the compiled model and the
    /// learned weights — introspection for debugging and for analyses that
    /// need the feature registry (e.g. inspecting learned constraint or
    /// source-reliability weights).
    ///
    /// This is a thin driver: it freezes the inputs into a
    /// [`PipelineContext`] (the one step needing `&mut Dataset`, because
    /// dictionary matches intern their asserted values) and hands control
    /// to [`Pipeline::standard`].
    pub fn run_full(
        mut self,
    ) -> Result<(RepairOutcome, CompiledModel, holo_factor::Weights), HoloError> {
        // ---- Freeze: external matching interns asserted values, after
        // which the dataset is immutable for the whole engine run. Billed
        // to the compile budget, matching the original pipeline's
        // accounting.
        let t0 = Instant::now();
        let mut matches: MatchLookup = MatchLookup::default();
        for (dict_idx, (dict, deps)) in self.dicts.iter().enumerate() {
            let matcher = Matcher::new(dict, DictId(dict_idx as u32));
            for md in deps {
                // Matches are kept for all cells: noisy cells gain repair
                // candidates; clean (evidence) cells train the dictionary
                // reliability weight w(k).
                for m in matcher.find_matches(&self.ds, md)? {
                    let sym = self.ds.intern(&m.value);
                    let dicts = matches.entry((m.cell, sym)).or_default();
                    if !dicts.contains(&m.dict) {
                        dicts.push(m.dict);
                    }
                }
            }
        }
        let matching_time = t0.elapsed();

        let cx = PipelineContext {
            ds: self.ds,
            constraints: self.constraints,
            matches,
            noisy_override: self.noisy_override,
            extra_detectors: self.extra_detectors,
            config: self.config,
        };

        // ---- The staged engine ----
        let (data, mut timings) = Pipeline::standard().run(&cx)?;
        timings.compile += matching_time;

        let model = data
            .model
            .ok_or_else(|| HoloError::Pipeline("standard pipeline produced no model".into()))?;
        let weights = data
            .weights
            .ok_or_else(|| HoloError::Pipeline("standard pipeline produced no weights".into()))?;
        let marginals = data
            .marginals
            .ok_or_else(|| HoloError::Pipeline("standard pipeline produced no marginals".into()))?;

        // ---- Repair extraction ----
        let ds = cx.ds;
        let report = RepairReport::from_marginals(
            &ds,
            &model.query_cells,
            &model.query_vars,
            &model.graph,
            &marginals,
        );
        let repaired = report.apply(&ds);

        let outcome = RepairOutcome {
            dataset: ds,
            repaired,
            report,
            timings,
            model: model.stats.clone(),
            learn_stats: data.learn_stats,
            violations: data.violations.len(),
            noisy_cells: data.noisy.len(),
        };
        Ok((outcome, model, weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use holo_dataset::Schema;
    use std::time::Duration;

    fn zip_city_dataset() -> Dataset {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City", "State"]));
        for _ in 0..8 {
            ds.push_row(&["60608", "Chicago", "IL"]);
        }
        ds.push_row(&["60608", "Cicago", "IL"]); // typo to repair
        for _ in 0..5 {
            ds.push_row(&["60609", "Evanston", "IL"]);
        }
        ds
    }

    #[test]
    fn end_to_end_repairs_typo() {
        let outcome = HoloClean::new(zip_city_dataset())
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.report.repairs.len(), 1);
        let r = &outcome.report.repairs[0];
        assert_eq!(r.old_value, "Cicago");
        assert_eq!(r.new_value, "Chicago");
        assert!(r.probability > 0.5);
        // The repaired copy reflects the fix; the original does not.
        assert_eq!(outcome.repaired.cell_str(8.into(), 1.into()), "Chicago");
        assert_eq!(outcome.dataset.cell_str(8.into(), 1.into()), "Cicago");
        assert!(outcome.violations > 0);
        assert!(outcome.noisy_cells > 0);
    }

    #[test]
    fn all_variants_repair_the_typo() {
        for variant in ModelVariant::all() {
            let outcome = HoloClean::new(zip_city_dataset())
                .with_constraint_text("FD: Zip -> City")
                .unwrap()
                .with_config(HoloConfig::default().with_variant(variant))
                .run()
                .unwrap();
            let repaired: Vec<_> = outcome
                .report
                .repairs
                .iter()
                .map(|r| (r.old_value.as_str(), r.new_value.as_str()))
                .collect();
            assert!(
                repaired.contains(&("Cicago", "Chicago")),
                "variant {variant:?} missed the repair: {repaired:?}"
            );
            if variant.uses_dc_factors() {
                assert!(outcome.model.cliques > 0, "{variant:?} grounds cliques");
            } else {
                assert_eq!(outcome.model.cliques, 0);
            }
        }
    }

    #[test]
    fn clean_dataset_produces_no_repairs() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60609", "Evanston"]);
        let outcome = HoloClean::new(ds)
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .run()
            .unwrap();
        assert!(outcome.report.repairs.is_empty());
        assert_eq!(outcome.violations, 0);
        assert_eq!(outcome.noisy_cells, 0);
    }

    #[test]
    fn noisy_override_respected() {
        let ds = zip_city_dataset();
        let city = ds.schema().attr_id("City").unwrap();
        let mut cells = FxHashSet::default();
        cells.insert(CellRef {
            tuple: 8usize.into(),
            attr: city,
        });
        let outcome = HoloClean::new(ds)
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .with_noisy_cells(cells)
            .run()
            .unwrap();
        assert_eq!(outcome.noisy_cells, 1);
        assert_eq!(outcome.report.repairs.len(), 1);
    }

    #[test]
    fn dictionary_signal_fixes_cell_without_duplicates() {
        // A single tuple with a wrong city: co-occurrence statistics alone
        // cannot know better (no duplicates), but the dictionary can.
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Cicago"]);
        ds.push_row(&["60609", "Cicago"]); // same wrong city, other zip
        let dict =
            ExtDict::from_csv("addr", "Ext_Zip,Ext_City\n60608,Chicago\n60609,Chicago\n").unwrap();
        let md = MatchingDependency::equalities("m1", &[("Zip", "Ext_Zip")], ("City", "Ext_City"));
        let city = ds.schema().attr_id("City").unwrap();
        let mut cells = FxHashSet::default();
        cells.insert(CellRef {
            tuple: 0usize.into(),
            attr: city,
        });
        cells.insert(CellRef {
            tuple: 1usize.into(),
            attr: city,
        });
        let outcome = HoloClean::new(ds)
            .with_dictionary(dict, vec![md])
            .with_noisy_cells(cells)
            .run()
            .unwrap();
        assert_eq!(outcome.report.repairs.len(), 2);
        for r in &outcome.report.repairs {
            assert_eq!(r.new_value, "Chicago");
        }
    }

    #[test]
    fn timings_are_populated() {
        let outcome = HoloClean::new(zip_city_dataset())
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .run()
            .unwrap();
        assert!(outcome.timings.total() > Duration::ZERO);
        assert_eq!(
            outcome.timings.repair(),
            outcome.timings.learn + outcome.timings.infer
        );
    }

    #[test]
    fn posteriors_cover_all_query_cells() {
        let outcome = HoloClean::new(zip_city_dataset())
            .with_constraint_text("FD: Zip -> City")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.report.posteriors.len(), outcome.model.query_vars);
        for p in &outcome.report.posteriors {
            let total: f64 = p.candidates.iter().map(|(_, pr)| pr).sum();
            assert!((total - 1.0).abs() < 1e-9, "posterior normalised");
        }
    }
}
