//! DDlog program rendering (§3.2, §4.2).
//!
//! The original HoloClean compiles its model to DDlog, DeepDive's
//! declarative language; this reproduction grounds the model directly, but
//! renders the equivalent DDlog program for inspection — the rules are the
//! clearest specification of what the compiler built, and the rendering is
//! exercised by tests so it cannot drift from the implementation.

use crate::config::HoloConfig;
use holo_constraints::ast::{Op, Operand, TupleVar};
use holo_constraints::ConstraintSet;
use holo_dataset::Dataset;
use std::fmt::Write as _;

fn op_str(op: Op) -> String {
    match op {
        Op::Eq => "=".to_string(),
        Op::Neq => "!=".to_string(),
        Op::Lt => "<".to_string(),
        Op::Gt => ">".to_string(),
        Op::Leq => "<=".to_string(),
        Op::Geq => ">=".to_string(),
        Op::Sim(t) => format!("~{t}"),
    }
}

/// Renders the DDlog program equivalent to the compiled model: the random
/// variable declaration, one rule per signal (§4.2), the Algorithm 1
/// denial-constraint rules, and — when the §5.2 relaxation is active — the
/// decomposed single-variable rules of Example 6.
pub fn render_program(ds: &Dataset, constraints: &ConstraintSet, config: &HoloConfig) -> String {
    let mut out = String::new();
    let attr = |a: holo_dataset::AttrId| ds.schema().attr_name(a).to_string();

    out.push_str("// Random variable declaration (one categorical variable per cell)\n");
    out.push_str("Value?(t, a, d) :- Domain(t, a, d)\n\n");

    out.push_str("// Quantitative statistics (weight per candidate/feature pair)\n");
    out.push_str("Value?(t, a, d) :- HasFeature(t, a, f) weight = w(d, f)\n\n");

    out.push_str("// Minimality prior (fixed weight)\n");
    let _ = writeln!(
        out,
        "Value?(t, a, d) :- InitValue(t, a, d) weight = {}\n",
        config.minimality_weight
    );

    out.push_str("// External data (weight per dictionary)\n");
    out.push_str("Value?(t, a, d) :- Matched(t, a, d, k) weight = w(k)\n\n");

    if config.source.is_some() {
        out.push_str("// Source reliability (weight per source)\n");
        out.push_str("Value?(t, a, d) :- AssertedBy(t, a, d, s) weight = w(s)\n\n");
    }

    out.push_str("// Denial constraints\n");
    for (sigma, c) in constraints.iter() {
        let _ = writeln!(out, "// sigma_{sigma}: {}", c.name);
        if config.variant.uses_dc_factors() {
            // Algorithm 1: the joint-factor rule.
            let mut head_atoms = Vec::new();
            let mut scope = Vec::new();
            for (k, p) in c.predicates.iter().enumerate() {
                let lhs_tuple = match p.lhs_tuple {
                    TupleVar::T1 => "t1",
                    TupleVar::T2 => "t2",
                };
                head_atoms.push(format!(
                    "Value?({lhs_tuple}, {}, v{}a)",
                    attr(p.lhs_attr),
                    k + 1
                ));
                match p.rhs {
                    Operand::Cell(tv, a) => {
                        let rhs_tuple = match tv {
                            TupleVar::T1 => "t1",
                            TupleVar::T2 => "t2",
                        };
                        head_atoms.push(format!("Value?({rhs_tuple}, {}, v{}b)", attr(a), k + 1));
                        scope.push(format!("v{}a {} v{}b", k + 1, op_str(p.op), k + 1));
                    }
                    Operand::Const(sym) => {
                        scope.push(format!(
                            "v{}a {} {:?}",
                            k + 1,
                            op_str(p.op),
                            ds.value_str(sym)
                        ));
                    }
                }
            }
            head_atoms.dedup();
            let body = if c.two_tuple {
                "Tuple(t1), Tuple(t2)"
            } else {
                "Tuple(t1)"
            };
            let _ = writeln!(
                out,
                "!({}) :- {body}, [{}] weight = {}",
                head_atoms.join(" ^ "),
                scope.join(", "),
                config.dc_factor_weight
            );
        }
        if config.variant.uses_dc_features() && c.two_tuple {
            // §5.2 / Example 6: one decomposed rule per Value? position,
            // with every other predicate read from InitValue.
            for (k, p) in c.predicates.iter().enumerate() {
                let lhs_tuple = match p.lhs_tuple {
                    TupleVar::T1 => "t1",
                    TupleVar::T2 => "t2",
                };
                let mut body_atoms = vec!["Tuple(t1)".to_string(), "Tuple(t2)".to_string()];
                let mut scope = vec!["t1 != t2".to_string()];
                for (j, q) in c.predicates.iter().enumerate() {
                    let q_tuple = match q.lhs_tuple {
                        TupleVar::T1 => "t1",
                        TupleVar::T2 => "t2",
                    };
                    if j != k {
                        body_atoms.push(format!(
                            "InitValue({q_tuple}, {}, u{}a)",
                            attr(q.lhs_attr),
                            j + 1
                        ));
                    }
                    match q.rhs {
                        Operand::Cell(tv, a) => {
                            let rhs_tuple = match tv {
                                TupleVar::T1 => "t1",
                                TupleVar::T2 => "t2",
                            };
                            body_atoms.push(format!(
                                "InitValue({rhs_tuple}, {}, u{}b)",
                                attr(a),
                                j + 1
                            ));
                            scope.push(format!("u{}a {} u{}b", j + 1, op_str(q.op), j + 1));
                        }
                        Operand::Const(sym) => scope.push(format!(
                            "u{}a {} {:?}",
                            j + 1,
                            op_str(q.op),
                            ds.value_str(sym)
                        )),
                    }
                }
                body_atoms.dedup();
                let _ = writeln!(
                    out,
                    "!Value?({lhs_tuple}, {}, u{}a) :- {}, [{}] weight = w(sigma_{sigma})",
                    attr(p.lhs_attr),
                    k + 1,
                    body_atoms.join(", "),
                    scope.join(", "),
                );
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelVariant;
    use holo_constraints::parse_constraints;
    use holo_dataset::Schema;

    fn setup() -> (Dataset, ConstraintSet) {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        (ds, cons)
    }

    #[test]
    fn relaxed_program_has_example6_rules() {
        let (ds, cons) = setup();
        let config = HoloConfig::default().with_variant(ModelVariant::DcFeats);
        let program = render_program(&ds, &cons, &config);
        // The Example 6 decomposition: one !Value? rule per predicate,
        // with InitValue bodies.
        assert_eq!(program.matches("!Value?(").count(), 2);
        assert!(program.contains("InitValue(t2, Zip"));
        assert!(program.contains("weight = w(sigma_0)"));
        // No joint-factor rules in the relaxed variant.
        assert!(!program.contains(" ^ "));
    }

    #[test]
    fn factor_program_has_algorithm1_rules() {
        let (ds, cons) = setup();
        let config = HoloConfig::default().with_variant(ModelVariant::DcFactors);
        let program = render_program(&ds, &cons, &config);
        assert!(program.contains("!(Value?(t1, Zip, v1a) ^ Value?(t2, Zip, v1b)"));
        assert!(program.contains("Tuple(t1), Tuple(t2)"));
        assert!(program.contains(&format!("weight = {}", config.dc_factor_weight)));
    }

    #[test]
    fn hybrid_program_has_both() {
        let (ds, cons) = setup();
        let config = HoloConfig::default().with_variant(ModelVariant::DcFeatsDcFactors);
        let program = render_program(&ds, &cons, &config);
        assert!(program.contains(" ^ "));
        assert!(program.contains("!Value?("));
    }

    #[test]
    fn universal_rules_always_present() {
        let (ds, cons) = setup();
        let config = HoloConfig::default();
        let program = render_program(&ds, &cons, &config);
        assert!(program.contains("Value?(t, a, d) :- Domain(t, a, d)"));
        assert!(program.contains("HasFeature(t, a, f) weight = w(d, f)"));
        assert!(program.contains("InitValue(t, a, d) weight = 0.5"));
        assert!(program.contains("Matched(t, a, d, k) weight = w(k)"));
        assert!(
            !program.contains("AssertedBy"),
            "no source rule unless configured"
        );
        let with_source = render_program(
            &ds,
            &cons,
            &HoloConfig::default().with_source("Zip", "City"),
        );
        assert!(with_source.contains("AssertedBy"));
    }

    #[test]
    fn constant_predicates_render() {
        let mut ds = Dataset::new(Schema::new(vec!["State"]));
        ds.push_row(&["IL"]);
        let cons = parse_constraints("t1&EQ(t1.State,\"XX\")", &mut ds).unwrap();
        let config = HoloConfig::default().with_variant(ModelVariant::DcFactors);
        let program = render_program(&ds, &cons, &config);
        assert!(program.contains("v1a = \"XX\""));
        assert!(program.contains("Tuple(t1)"));
    }
}
