//! Algorithm 2 — pruning the domain of the noisy-cell random variables.
//!
//! For a noisy cell `c` in tuple `t` with attribute `A_c`, the candidate
//! repairs are the values `v` of `A_c`'s active domain that co-occur with
//! some other cell value `v_c'` of `t` with conditional probability
//! `Pr[v | v_c'] = #(v, v_c') / #v_c' ≥ τ`. The cell's initial value is
//! always kept (the model must be able to keep the observation), and the
//! candidate list is capped at [`HoloConfig::max_domain`] by descending
//! best conditional probability.
//!
//! Varying τ trades recall (small τ, large domains) against precision and
//! runtime (large τ) — the axis swept in Figures 3 and 4.
//!
//! [`HoloConfig::max_domain`]: crate::config::HoloConfig::max_domain

use holo_dataset::{CellRef, CooccurStats, CorrelationView, Dataset, FxHashMap, GroupView, Sym};

/// BClean-style correlation gate for Algorithm 2 (the `cor_strength` knob
/// of the Python HoloClean API): conditioning attributes whose uncertainty
/// coefficient toward the repaired attribute falls below `min_corr` are
/// skipped entirely — their co-occurrence rows are never scanned and their
/// candidates never enter the domain. Opt-in via
/// [`HoloConfig::cor_strength`](crate::config::HoloConfig::cor_strength);
/// ungated pruning scans every partner.
#[derive(Debug, Clone, Copy)]
pub struct PruneGate<'a> {
    /// The dependency view of the statistics being pruned against.
    pub corr: &'a CorrelationView,
    /// Minimum correlation for a partner attribute to participate.
    pub min_corr: f64,
}

/// Pruned candidate domains per noisy cell. Candidates are deduplicated,
/// always contain the cell's initial value (even if null), and are sorted
/// by descending score (initial value first when tied).
#[derive(Debug, Clone, Default)]
pub struct CellDomains {
    domains: FxHashMap<CellRef, Vec<Sym>>,
}

impl CellDomains {
    /// The candidate list of `cell`; empty slice if the cell is unknown.
    pub fn get(&self, cell: CellRef) -> &[Sym] {
        self.domains.get(&cell).map_or(&[], Vec::as_slice)
    }

    /// Whether the cell has a pruned domain.
    pub fn contains(&self, cell: CellRef) -> bool {
        self.domains.contains_key(&cell)
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no cells are covered.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Iterates `(cell, candidates)`.
    pub fn iter(&self) -> impl Iterator<Item = (CellRef, &[Sym])> {
        self.domains.iter().map(|(c, d)| (*c, d.as_slice()))
    }

    /// Total candidate count over all cells (a size proxy for the factor
    /// graph, reported by the harness).
    pub fn total_candidates(&self) -> usize {
        self.domains.values().map(Vec::len).sum()
    }

    /// Inserts a domain (used by compile for evidence variables).
    pub(crate) fn insert(&mut self, cell: CellRef, domain: Vec<Sym>) {
        self.domains.insert(cell, domain);
    }
}

/// Runs Algorithm 2 over the noisy cells.
pub fn prune_domains<I>(
    ds: &Dataset,
    noisy: I,
    stats: &CooccurStats,
    tau: f64,
    max_domain: usize,
) -> CellDomains
where
    I: IntoIterator<Item = CellRef>,
{
    let cells: Vec<CellRef> = noisy.into_iter().collect();
    prune_domains_with_threads(ds, &cells, stats, tau, max_domain, 1)
}

/// [`prune_domains`] with each cell's Algorithm 2 scan dispatched across up
/// to `threads` worker threads (`0` = all cores). Pruning one cell touches
/// only the read-only dataset and statistics, so cells shard freely; the
/// result is identical for every thread count.
pub fn prune_domains_with_threads(
    ds: &Dataset,
    noisy: &[CellRef],
    stats: &CooccurStats,
    tau: f64,
    max_domain: usize,
    threads: usize,
) -> CellDomains {
    prune_domains_gated(ds, noisy, stats, tau, max_domain, threads, None)
}

/// [`prune_domains_with_threads`] with an optional correlation gate.
/// `gate = None` scans all partner attributes — byte-identical to the
/// ungated path.
pub fn prune_domains_gated(
    ds: &Dataset,
    noisy: &[CellRef],
    stats: &CooccurStats,
    tau: f64,
    max_domain: usize,
    threads: usize,
    gate: Option<PruneGate<'_>>,
) -> CellDomains {
    let domains = holo_parallel::parallel_map(threads, noisy, |_, &cell| {
        prune_cell_gated(ds, cell, stats, tau, max_domain, 1, gate)
    });
    let mut out = CellDomains::default();
    for (&cell, domain) in noisy.iter().zip(domains) {
        out.insert(cell, domain);
    }
    out
}

/// [`prune_cell_with_support`] with no minimum-support requirement.
pub fn prune_cell(
    ds: &Dataset,
    cell: CellRef,
    stats: &CooccurStats,
    tau: f64,
    max_domain: usize,
) -> Vec<Sym> {
    prune_cell_with_support(ds, cell, stats, tau, max_domain, 1)
}

/// Candidate repairs for one cell (always ≥ 1 entry: the initial value).
/// Conditioning values occurring fewer than `min_support` times are
/// ignored — a value seen twice yields meaningless `Pr[v | v'] = 1`
/// estimates.
pub fn prune_cell_with_support(
    ds: &Dataset,
    cell: CellRef,
    stats: &CooccurStats,
    tau: f64,
    max_domain: usize,
    min_support: u32,
) -> Vec<Sym> {
    prune_cell_gated(ds, cell, stats, tau, max_domain, min_support, None)
}

/// [`prune_cell_with_support`] with an optional correlation gate: gated
/// partner attributes contribute no candidates at all. On the dense
/// statistics backend the inner loop walks a contiguous count row (or
/// sorted postings); on the naive oracle it probes the group's hash table.
/// Either way the best score per candidate and the final string-tie-broken
/// sort make iteration order unobservable, so the two backends return the
/// same domain.
pub fn prune_cell_gated(
    ds: &Dataset,
    cell: CellRef,
    stats: &CooccurStats,
    tau: f64,
    max_domain: usize,
    min_support: u32,
    gate: Option<PruneGate<'_>>,
) -> Vec<Sym> {
    let init = ds.cell_ref(cell);
    // Best conditional probability per candidate across conditioning cells.
    let mut scores: FxHashMap<Sym, f64> = FxHashMap::default();
    for cond_attr in ds.schema().attrs() {
        if cond_attr == cell.attr {
            continue;
        }
        if let Some(g) = gate {
            if g.corr.correlation(cond_attr, cell.attr) < g.min_corr {
                continue;
            }
        }
        let v_cond = ds.cell(cell.tuple, cond_attr);
        if v_cond.is_null() {
            continue;
        }
        let denom = stats.freq().count(cond_attr, v_cond);
        if denom == 0 || denom < min_support {
            continue;
        }
        if let Some(co) = stats.group(cond_attr, v_cond, cell.attr) {
            let mut score = |v: Sym, count: u32| {
                let p = f64::from(count) / f64::from(denom);
                if p >= tau {
                    let entry = scores.entry(v).or_insert(0.0);
                    if p > *entry {
                        *entry = p;
                    }
                }
            };
            // The hash-map arm is kept as an explicit loop in this frame:
            // routing it through `for_each`'s closure costs ~25% of the
            // whole scan when the call doesn't inline (measured on the
            // hospital pruning bench). The dense arms keep the shared
            // walker — their cost is the row scan inside it, not the
            // per-entry call.
            match co {
                GroupView::Map(m) => {
                    for (&v, &count) in m {
                        score(v, count);
                    }
                }
                other => other.for_each(score),
            }
        }
    }
    // The initial value always survives pruning with top priority.
    scores.insert(init, f64::INFINITY);
    let mut candidates: Vec<(Sym, f64)> = scores.into_iter().collect();
    // Ties break on the *value string*, not the symbol id: symbol ids
    // encode interning order, and the streaming engine interns values in
    // arrival order (constraints first, rows as they arrive) while the
    // one-shot loader interns all rows up front — a pool-dependent
    // tie-break would make the two paths disagree on domain order (and
    // therefore on MAP ties) for identical data.
    candidates.sort_by(|(s1, p1), (s2, p2)| {
        p2.partial_cmp(p1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ds.value_str(*s1).cmp(ds.value_str(*s2)))
    });
    candidates.truncate(max_domain.max(1));
    candidates.into_iter().map(|(s, _)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_dataset::Schema;
    use proptest::prelude::*;

    /// Zip 60608 maps to Chicago in 3/4 tuples, Cicago in 1/4.
    fn city_ds() -> Dataset {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        ds.push_row(&["60609", "Evanston"]);
        ds
    }

    fn cell(ds: &Dataset, t: usize, attr: &str) -> CellRef {
        CellRef {
            tuple: t.into(),
            attr: ds.schema().attr_id(attr).unwrap(),
        }
    }

    #[test]
    fn threshold_filters_candidates() {
        let ds = city_ds();
        let stats = CooccurStats::build(&ds);
        let c = cell(&ds, 3, "City"); // the "Cicago" cell
                                      // τ=0.5: only Chicago (p=0.75) passes; initial value kept.
        let dom = prune_cell(&ds, c, &stats, 0.5, 50);
        let names: Vec<_> = dom.iter().map(|&s| ds.value_str(s)).collect();
        assert_eq!(names, vec!["Cicago", "Chicago"]);
        // τ=0.2: Cicago (p=0.25) also passes on merit.
        let dom = prune_cell(&ds, c, &stats, 0.2, 50);
        assert_eq!(dom.len(), 2);
        // τ=0.9: nothing passes; only the initial value remains.
        let dom = prune_cell(&ds, c, &stats, 0.9, 50);
        let names: Vec<_> = dom.iter().map(|&s| ds.value_str(s)).collect();
        assert_eq!(names, vec!["Cicago"]);
    }

    #[test]
    fn initial_value_always_first() {
        let ds = city_ds();
        let stats = CooccurStats::build(&ds);
        for t in 0..ds.tuple_count() {
            let c = cell(&ds, t, "City");
            let dom = prune_cell(&ds, c, &stats, 0.1, 50);
            assert_eq!(dom[0], ds.cell_ref(c), "initial value leads the domain");
        }
    }

    #[test]
    fn max_domain_cap() {
        let mut ds = Dataset::new(Schema::new(vec!["K", "V"]));
        for i in 0..20 {
            ds.push_row(&["k".to_string(), format!("v{i}")]);
        }
        let stats = CooccurStats::build(&ds);
        let c = cell(&ds, 0, "V");
        let dom = prune_cell(&ds, c, &stats, 0.0, 5);
        assert_eq!(dom.len(), 5);
        assert_eq!(dom[0], ds.cell_ref(c));
    }

    #[test]
    fn null_conditioning_cells_ignored() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["", "Chicago"]);
        ds.push_row(&["", "Boston"]);
        let stats = CooccurStats::build(&ds);
        let c = cell(&ds, 0, "City");
        // No non-null conditioning cell: only the initial value.
        let dom = prune_cell(&ds, c, &stats, 0.0, 50);
        assert_eq!(dom.len(), 1);
    }

    #[test]
    fn prune_domains_covers_all_noisy_cells() {
        let ds = city_ds();
        let stats = CooccurStats::build(&ds);
        let noisy = [cell(&ds, 3, "City"), cell(&ds, 3, "Zip")];
        let domains = prune_domains(&ds, noisy.iter().copied(), &stats, 0.5, 50);
        assert_eq!(domains.len(), 2);
        assert!(domains.contains(noisy[0]));
        assert!(!domains.get(noisy[1]).is_empty());
        assert!(domains.total_candidates() >= 2);
    }

    proptest! {
        /// Monotonicity: raising τ never grows a domain, and every domain
        /// contains the initial value.
        #[test]
        fn prop_monotone_in_tau(
            rows in proptest::collection::vec((0u8..4, 0u8..6), 1..40),
            t1 in 0.0f64..0.5,
            delta in 0.0f64..0.5
        ) {
            let mut ds = Dataset::new(Schema::new(vec!["K", "V"]));
            for (k, v) in &rows {
                ds.push_row(&[format!("k{k}"), format!("v{v}")]);
            }
            let stats = CooccurStats::build(&ds);
            let t2 = t1 + delta;
            for t in 0..rows.len() {
                let c = CellRef { tuple: t.into(), attr: holo_dataset::AttrId(1) };
                let d1 = prune_cell(&ds, c, &stats, t1, 100);
                let d2 = prune_cell(&ds, c, &stats, t2, 100);
                prop_assert!(d2.len() <= d1.len());
                prop_assert!(d1.contains(&ds.cell_ref(c)));
                prop_assert!(d2.contains(&ds.cell_ref(c)));
                // Subset: every τ₂ candidate also passes τ₁.
                for v in &d2 {
                    prop_assert!(d1.contains(v));
                }
            }
        }

        /// The dense statistics engine and the retained naive oracle give
        /// Algorithm 2 identical domains — same cells, same candidates,
        /// same order — across random datasets (with nulls), a full CRUD
        /// interleaving (build → extend → update → delete), thread counts
        /// {1, 4}, and both the ungated and correlation-gated scans.
        #[test]
        fn prop_prune_domains_dense_matches_naive(
            rows in proptest::collection::vec((0u8..5, 0u8..4, 0u8..4), 5..30),
            extra in proptest::collection::vec((0u8..5, 0u8..4, 0u8..4), 0..10),
            update_step in 2usize..5,
            delete_step in 3usize..6,
            tau in 0.0f64..0.6,
            min_corr in 0.0f64..0.8,
        ) {
            use holo_dataset::TupleId;
            // 0 encodes a null cell so codes and hash keys diverge early.
            let cs = |k: usize, v: u8| if v == 0 { String::new() } else { format!("a{k}v{v}") };
            let row = |r: &(u8, u8, u8)| vec![cs(0, r.0), cs(1, r.1), cs(2, r.2)];

            let mut ds = Dataset::new(Schema::new(vec!["a", "b", "c"]));
            for r in &rows {
                ds.push_row(&row(r));
            }
            let mut dense = CooccurStats::build_with_opts(&ds, 4, false);
            let mut naive = CooccurStats::build_with_opts(&ds, 4, true);

            // Extend with a fresh batch.
            let batch: Vec<Vec<String>> = extra.iter().map(&row).collect();
            if !batch.is_empty() {
                let from = ds.append_rows(&batch);
                dense.extend_with_threads(&ds, from, 4);
                naive.extend_with_threads(&ds, from, 4);
            }

            // In-place update of a stride of rows.
            let updated: Vec<TupleId> = (0..ds.tuple_count())
                .step_by(update_step)
                .map(TupleId::from)
                .filter(|&t| ds.is_live(t))
                .collect();
            dense.retract_with_threads(&ds, &updated, 4);
            naive.retract_with_threads(&ds, &updated, 4);
            let new_rows: Vec<(TupleId, Vec<String>)> = updated
                .iter()
                .map(|&t| {
                    let i = t.index() as u8;
                    (t, row(&(i % 6, i % 3, i % 5)))
                })
                .collect();
            ds.update_rows(&new_rows);
            dense.absorb_rows_with_threads(&ds, &updated, 4);
            naive.absorb_rows_with_threads(&ds, &updated, 4);

            // Delete a stride of rows.
            let deleted: Vec<TupleId> = (0..ds.tuple_count())
                .step_by(delete_step)
                .map(TupleId::from)
                .filter(|&t| ds.is_live(t))
                .collect();
            dense.retract_with_threads(&ds, &deleted, 4);
            ds.delete_rows(&deleted);
            naive.retract_with_threads(&ds, &deleted, 4);

            // Every live cell is "noisy": prune them all.
            let noisy: Vec<CellRef> = ds
                .tuples()
                .flat_map(|t| {
                    ds.schema()
                        .attrs()
                        .map(move |attr| CellRef { tuple: t, attr })
                })
                .collect();
            let dump = |doms: &CellDomains| -> Vec<(CellRef, Vec<Sym>)> {
                let mut v: Vec<_> =
                    doms.iter().map(|(c, d)| (c, d.to_vec())).collect();
                v.sort_unstable_by_key(|&(c, _)| (c.tuple.index(), c.attr.index()));
                v
            };
            for threads in [1usize, 4] {
                for gated in [false, true] {
                    let gd = gated.then(|| PruneGate {
                        corr: dense.correlations(),
                        min_corr,
                    });
                    let gn = gated.then(|| PruneGate {
                        corr: naive.correlations(),
                        min_corr,
                    });
                    let d = prune_domains_gated(&ds, &noisy, &dense, tau, 10, threads, gd);
                    let n = prune_domains_gated(&ds, &noisy, &naive, tau, 10, threads, gn);
                    prop_assert_eq!(dump(&d), dump(&n));
                }
            }
        }

        /// Domains are duplicate-free.
        #[test]
        fn prop_no_duplicates(
            rows in proptest::collection::vec((0u8..3, 0u8..3), 1..30)
        ) {
            let mut ds = Dataset::new(Schema::new(vec!["K", "V"]));
            for (k, v) in &rows {
                ds.push_row(&[format!("k{k}"), format!("v{v}")]);
            }
            let stats = CooccurStats::build(&ds);
            let c = CellRef { tuple: 0usize.into(), attr: holo_dataset::AttrId(1) };
            let dom = prune_cell(&ds, c, &stats, 0.0, 100);
            let mut dedup = dom.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), dom.len());
        }
    }
}
