//! Configuration of the HoloClean pipeline.

use holo_factor::{GibbsConfig, LearnConfig};
use serde::{Deserialize, Serialize};

/// Which probabilistic model to compile — the ablation axis of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelVariant {
    /// Denial constraints ground as multi-variable factors with the fixed
    /// weight [`HoloConfig::dc_factor_weight`] (Algorithm 1). No
    /// partitioning.
    DcFactors,
    /// [`ModelVariant::DcFactors`] plus Algorithm 3 tuple partitioning.
    DcFactorsPartitioned,
    /// Denial constraints relaxed to single-variable features with learned
    /// weights (§5.2). The default; used for Tables 3 and 4.
    DcFeats,
    /// Both relaxed features and constant-weight factors.
    DcFeatsDcFactors,
    /// [`ModelVariant::DcFeatsDcFactors`] plus partitioning.
    DcFeatsDcFactorsPartitioned,
}

impl ModelVariant {
    /// Whether the variant compiles relaxed DC features.
    pub fn uses_dc_features(self) -> bool {
        matches!(
            self,
            ModelVariant::DcFeats
                | ModelVariant::DcFeatsDcFactors
                | ModelVariant::DcFeatsDcFactorsPartitioned
        )
    }

    /// Whether the variant grounds DC clique factors.
    pub fn uses_dc_factors(self) -> bool {
        matches!(
            self,
            ModelVariant::DcFactors
                | ModelVariant::DcFactorsPartitioned
                | ModelVariant::DcFeatsDcFactors
                | ModelVariant::DcFeatsDcFactorsPartitioned
        )
    }

    /// Whether DC factor grounding is restricted to Algorithm 3 groups.
    pub fn uses_partitioning(self) -> bool {
        matches!(
            self,
            ModelVariant::DcFactorsPartitioned | ModelVariant::DcFeatsDcFactorsPartitioned
        )
    }

    /// All five variants, in the order Figure 5 reports them.
    pub fn all() -> [ModelVariant; 5] {
        [
            ModelVariant::DcFactors,
            ModelVariant::DcFactorsPartitioned,
            ModelVariant::DcFeats,
            ModelVariant::DcFeatsDcFactors,
            ModelVariant::DcFeatsDcFactorsPartitioned,
        ]
    }

    /// Short label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            ModelVariant::DcFactors => "DC Factors",
            ModelVariant::DcFactorsPartitioned => "DC Factors + partitioning",
            ModelVariant::DcFeats => "DC Feats",
            ModelVariant::DcFeatsDcFactors => "DC Feats + DC Factors",
            ModelVariant::DcFeatsDcFactorsPartitioned => "DC Feats + DC Factors + partitioning",
        }
    }
}

/// Optional source-reliability featurization (§4.1: lineage features; used
/// for the Flights dataset, following SLiMFast \[35\]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceConfig {
    /// Attribute identifying the real-world entity rows describe (e.g.
    /// `"Flight"`); assertions are collected across rows sharing it.
    pub entity_attr: String,
    /// Attribute naming the source that contributed the row.
    pub source_attr: String,
}

/// Knobs of the streaming ingestion engine
/// ([`crate::stream::StreamSession`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Run a warm-start replay training pass after every ingested batch,
    /// so interim posteriors served between batches reflect the new
    /// evidence without paying a full retrain. Batch-equivalent reads
    /// ([`crate::stream::StreamSession::report`]) always run the canonical
    /// from-scratch retrain regardless — this knob only trades interim
    /// freshness against per-batch wall-clock.
    pub refine_each_batch: bool,
    /// Replay window: the newest `replay_window` evidence examples (plus
    /// an equally-sized seeded sample of older ones) make up each replay
    /// pass.
    pub replay_window: usize,
    /// Epochs per replay pass.
    pub replay_epochs: usize,
    /// Diagnostics/bench escape hatch: recompute every cell and force a
    /// full design-matrix + component-index rebuild on every batch instead
    /// of patching in place. Output is identical (that is the point of the
    /// equivalence contract); the `stream_ingest` bench uses it to price
    /// the patch path against the rebuild it replaces.
    pub force_full_rebuild: bool,
    /// Scheduled compaction period, measured in ingested mutation batches
    /// (`push_batch` / `push_updates` / `push_deletes` each count one).
    /// Every `compact_every` batches the session runs
    /// [`crate::stream::StreamSession::compact`]: tombstoned rows and
    /// retired/pinned variables are renumbered away and all three cached
    /// structures (design matrix, component index, coloring) pay their one
    /// amortised full rebuild. `0` disables the schedule — compaction then
    /// only happens lazily when an exact read requires it.
    pub compact_every: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            refine_each_batch: true,
            replay_window: 256,
            replay_epochs: 2,
            force_full_rebuild: false,
            compact_every: 0,
        }
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoloConfig {
    /// The Algorithm 2 co-occurrence threshold τ.
    pub tau: f64,
    /// Hard cap on a noisy cell's candidate count (keeps grounding bounded
    /// when τ is small); candidates are kept in descending co-occurrence
    /// probability. The initial value always survives.
    pub max_domain: usize,
    /// Which model to compile.
    pub variant: ModelVariant,
    /// Fixed weight `w` of DC clique factors (Algorithm 1 "soft
    /// constraint" relaxation; `f64::INFINITY` would make them hard).
    pub dc_factor_weight: f64,
    /// Fixed weight of the minimality prior.
    pub minimality_weight: f64,
    /// Initial (learnable) value of each dictionary's reliability weight
    /// `w(k)`. Dictionaries are trusted a priori; evidence cells covered by
    /// matches adjust the weight during learning.
    pub ext_dict_prior: f64,
    /// Normalizer for relaxed-DC feature values: the emitted feature is
    /// `violation_count / dc_feature_cap`, keeping SGD inputs O(1) while
    /// preserving the linear-in-count semantics of Example 6 (one grounded
    /// factor per violating partner tuple).
    pub dc_feature_cap: u32,
    /// Initial (learnable) value of each constraint's relaxed-DC feature
    /// weight `w(σ)`. Negative: a candidate that would violate a denial
    /// constraint is a priori implausible — that is what the constraint
    /// asserts. Evidence refines the weight per constraint; the prior
    /// carries constraints whose attributes have no clean cells at all
    /// (fully-saturated violation groups).
    pub dc_violation_prior: f64,
    /// Cap on grounded cliques per constraint (safety valve for the
    /// unpartitioned factor variants at small τ; the paper reports exactly
    /// this blow-up in §1 challenge (2)). A constraint stops grounding
    /// outright once the cap is reached.
    pub max_cliques_per_constraint: usize,
    /// Evidence cells sampled per attribute for weight learning.
    pub max_evidence_per_attr: usize,
    /// Evidence variables build their candidate domains with
    /// `min(tau, evidence_tau_cap)`: at large τ most clean cells would
    /// have singleton domains and carry no gradient, starving SGD.
    pub evidence_tau_cap: f64,
    /// Minimum occurrences a conditioning value needs before Algorithm 2
    /// trusts `Pr[v | v']` — rare conditioning values (count 1-2) produce
    /// spurious probability-1 candidates.
    pub min_cond_support: u32,
    /// Initial (learnable) weight of the per-attribute empirical
    /// distribution feature, whose value is the mean conditional
    /// probability `Pr[d | v']` of a candidate across the tuple's other
    /// cells. This is the "empirical distribution characterizing
    /// attributes" signal of §1; unlike the per-(d, f) co-occurrence
    /// weights it needs no per-value evidence, so it keeps defending
    /// frequent values inside fully-noisy violation groups.
    pub distribution_prior: f64,
    /// Optional source-reliability features.
    pub source: Option<SourceConfig>,
    /// SGD hyper-parameters.
    pub learn: LearnConfig,
    /// Gibbs hyper-parameters (clique variants only).
    pub gibbs: GibbsConfig,
    /// Joint-state ceiling for per-component **exact** inference: during
    /// partitioned inference, a clique-coupled connected component whose
    /// query variables span at most this many joint assignments is
    /// enumerated exactly (exact marginals, no sampling noise) instead of
    /// Gibbs-sampled; `0` disables enumeration. Components with no cliques
    /// at all — singleton variables are the common case after pruning —
    /// always take the closed-form softmax regardless of this limit, so
    /// for the relaxed (clique-free) model the knob has **no effect on
    /// output**. Determinism contract: like [`GibbsConfig::chains`] this
    /// is a *model* knob — changing it changes which engine produces a
    /// coupled component's marginals — while at any fixed value every
    /// thread count remains bit-for-bit identical to `threads = 1`.
    pub exact_component_limit: u64,
    /// Chromatic Gibbs sweeps for sampled components: when set, a
    /// Gibbs-routed connected component whose query variables span several
    /// colors of the graph's greedy interaction-graph coloring resamples
    /// whole color classes in parallel fixed-size blocks instead of
    /// sweeping variables one at a time — within-component parallelism for
    /// the densely constrained graphs that collapse into one giant
    /// component. Like [`HoloConfig::exact_component_limit`] this is a
    /// *model* knob: it changes the sampling schedule (and therefore the
    /// stream) of multi-color components, while clique-free components are
    /// bit-for-bit unaffected and any thread count remains bit-for-bit
    /// `threads = 1`. Off by default.
    pub chromatic_gibbs: bool,
    /// Frozen-weight score cache for partitioned inference: when set (the
    /// default), [`holo_factor::infer_partitioned`] scores every design
    /// row once up front through the blocked kernel and all three engines
    /// — closed-form softmax, exact enumeration, and Gibbs conditionals —
    /// read the cached rows instead of re-walking the design matrix.
    /// Because the cache reproduces the kernel's exact addition order,
    /// this is a pure *wall-clock* knob like [`HoloConfig::threads`]:
    /// repairs and posteriors are byte-identical on or off, at every
    /// thread count. The cache is built per inference pass and never
    /// stored in the graph, so feedback retrains can't read stale scores.
    pub score_cache: bool,
    /// Route [`crate::feedback::FeedbackSession::retrain`] through the
    /// streaming warm-start replay trainer instead of the canonical
    /// from-scratch retrain: replay passes start from the current weights
    /// and prioritise the freshly pinned cells, trading bit-exact
    /// batch-equivalence for O(replay window) updates per retrain. Off by
    /// default — the default retrain stays bit-for-bit the one-shot
    /// pipeline's training.
    pub feedback_replay: bool,
    /// Streaming-ingestion knobs (only read by
    /// [`crate::stream::StreamSession`]; the one-shot pipeline ignores
    /// them).
    pub stream: StreamConfig,
    /// Statistics-engine oracle switch: when set, `CooccurStats` stores
    /// its counts in the original nested hash-map tables instead of the
    /// dense per-attribute-pair count blocks. Both backends answer every
    /// query identically (proptested in `holo_dataset::stats`), so like
    /// [`HoloConfig::score_cache`] this is a pure *wall-clock* knob:
    /// repairs and posteriors are byte-identical on or off, at every
    /// thread count. Off by default — the dense engine is the fast path;
    /// `--naive-stats` on the bench binaries flips this on for the CI
    /// equivalence diffs.
    pub naive_stats: bool,
    /// BClean-style correlation gate for Algorithm 2 domain pruning (the
    /// `cor_strength` knob of the Python HoloClean API): when set,
    /// conditioning attributes whose uncertainty coefficient toward the
    /// repaired attribute falls below this threshold are skipped entirely
    /// during the partner scan, shrinking candidate domains and everything
    /// downstream (design matrix, learning, inference). Unlike
    /// [`HoloConfig::naive_stats`] this is a *model* knob — gating changes
    /// which candidates exist — so it is opt-in: `None` (the default)
    /// scans all partners, preserving every byte-identical contract.
    pub cor_strength: Option<f64>,
    /// Master seed (evidence sampling).
    pub seed: u64,
    /// Worker threads for the data-parallel stages (violation detection
    /// and its blocking index, statistics, domain pruning, featurization,
    /// DC-factor grounding, minibatch-SGD gradient shards, and — when
    /// [`GibbsConfig::chains`] > 1 — the Gibbs chains). `0` = all cores.
    /// Every thread count produces bit-for-bit the `threads = 1` result —
    /// the knob trades wall-clock only, never output. Note the chain
    /// *count* is a model knob ([`HoloConfig::with_gibbs_chains`]), not a
    /// thread knob: changing it changes which seeds sample, so it is
    /// deliberately not derived from `threads`.
    pub threads: usize,
}

impl Default for HoloConfig {
    fn default() -> Self {
        HoloConfig {
            tau: 0.5,
            max_domain: 50,
            variant: ModelVariant::DcFeats,
            dc_factor_weight: 4.0,
            minimality_weight: 0.5,
            ext_dict_prior: 2.0,
            dc_feature_cap: 4,
            dc_violation_prior: -1.0,
            max_cliques_per_constraint: 500_000,
            max_evidence_per_attr: 800,
            evidence_tau_cap: 0.3,
            min_cond_support: 2,
            distribution_prior: 2.0,
            source: None,
            learn: LearnConfig::default(),
            gibbs: GibbsConfig::default(),
            exact_component_limit: 4096,
            chromatic_gibbs: false,
            score_cache: true,
            feedback_replay: false,
            stream: StreamConfig::default(),
            naive_stats: false,
            cor_strength: None,
            seed: 0x401c,
            threads: 0,
        }
    }
}

impl HoloConfig {
    /// Sets τ (builder style).
    pub fn with_tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the model variant (builder style).
    pub fn with_variant(mut self, variant: ModelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the worker-thread budget (builder style); `0` = all cores,
    /// `1` = fully sequential. Output is identical either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of independent Gibbs chains (builder style). Chains
    /// run in parallel over the thread budget and their sample counts
    /// merge into one marginal estimate; `1` (the default) reproduces the
    /// single-chain sampler exactly. Unlike `threads`, this knob *does*
    /// change the output (different seeds sample), which is why it is
    /// separate.
    pub fn with_gibbs_chains(mut self, chains: usize) -> Self {
        self.gibbs.chains = chains.max(1);
        self
    }

    /// Sets the SGD minibatch size (builder style); `0`/`1` = classic
    /// per-example SGD. Like the Gibbs chain count this is a *model* knob
    /// — it changes where gradients are applied, hence the learned
    /// weights — while `threads` only changes how each minibatch's
    /// gradient work is sharded.
    pub fn with_minibatch(mut self, minibatch: usize) -> Self {
        self.learn.minibatch = minibatch;
        self
    }

    /// Toggles the packed example-major learning kernel (builder style;
    /// on by default via [`LearnConfig::packed`]). Every learning site —
    /// the one-shot `LearnStage`, feedback retrains, and streaming
    /// replay/report retrains — reads this through `self.learn`, so one
    /// knob covers them all. A pure *wall-clock* knob like
    /// [`HoloConfig::score_cache`]: weights, repairs, and posteriors are
    /// byte-identical on or off, at every thread count (the naive path
    /// is kept as the equivalence oracle; `--naive-learn` on the bench
    /// binaries flips this off).
    pub fn with_packed_learn(mut self, packed: bool) -> Self {
        self.learn.packed = packed;
        self
    }

    /// Whether training routes through the packed arena kernel.
    pub fn packed_learn(&self) -> bool {
        self.learn.packed
    }

    /// Sets the per-component exact-inference ceiling (builder style);
    /// `0` disables exact enumeration so every clique-coupled component
    /// samples. See the field docs for the determinism contract.
    pub fn with_exact_component_limit(mut self, limit: u64) -> Self {
        self.exact_component_limit = limit;
        self
    }

    /// Enables chromatic Gibbs sweeps for sampled components (builder
    /// style). See the field docs for the determinism contract.
    pub fn with_chromatic_gibbs(mut self, chromatic: bool) -> Self {
        self.chromatic_gibbs = chromatic;
        self
    }

    /// Toggles the frozen-weight score cache for partitioned inference
    /// (builder style). A wall-clock-only knob — see the field docs.
    pub fn with_score_cache(mut self, score_cache: bool) -> Self {
        self.score_cache = score_cache;
        self
    }

    /// Toggles the naive hash-map statistics oracle (builder style; the
    /// dense engine is the default). A wall-clock-only knob — see the
    /// field docs.
    pub fn with_naive_stats(mut self, naive: bool) -> Self {
        self.naive_stats = naive;
        self
    }

    /// Sets the Algorithm 2 correlation gate (builder style); `None`
    /// scans all partner attributes. A *model* knob — see the field docs.
    pub fn with_cor_strength(mut self, cor_strength: Option<f64>) -> Self {
        self.cor_strength = cor_strength;
        self
    }

    /// Routes feedback retraining through the warm-start replay trainer
    /// (builder style). See the field docs for the trade.
    pub fn with_feedback_replay(mut self, replay: bool) -> Self {
        self.feedback_replay = replay;
        self
    }

    /// Sets the streaming-ingestion knobs (builder style).
    pub fn with_stream(mut self, stream: StreamConfig) -> Self {
        self.stream = stream;
        self
    }

    /// Resolved thread budget (`threads`, with `0` mapped to the core
    /// count of the machine).
    pub fn effective_threads(&self) -> usize {
        holo_parallel::effective_threads(self.threads)
    }

    /// Enables source features (builder style).
    pub fn with_source(mut self, entity_attr: &str, source_attr: &str) -> Self {
        self.source = Some(SourceConfig {
            entity_attr: entity_attr.to_string(),
            source_attr: source_attr.to_string(),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_capabilities() {
        assert!(!ModelVariant::DcFeats.uses_dc_factors());
        assert!(ModelVariant::DcFeats.uses_dc_features());
        assert!(!ModelVariant::DcFeats.uses_partitioning());

        assert!(ModelVariant::DcFactors.uses_dc_factors());
        assert!(!ModelVariant::DcFactors.uses_dc_features());

        assert!(ModelVariant::DcFactorsPartitioned.uses_partitioning());
        assert!(ModelVariant::DcFeatsDcFactorsPartitioned.uses_dc_features());
        assert!(ModelVariant::DcFeatsDcFactorsPartitioned.uses_dc_factors());
        assert!(ModelVariant::DcFeatsDcFactorsPartitioned.uses_partitioning());
    }

    #[test]
    fn all_variants_distinct_labels() {
        let labels: Vec<_> = ModelVariant::all().iter().map(|v| v.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn default_is_the_paper_table3_setup() {
        let c = HoloConfig::default();
        assert_eq!(c.variant, ModelVariant::DcFeats);
        assert!(c.tau > 0.0 && c.tau < 1.0);
    }

    #[test]
    fn builder_setters() {
        let c = HoloConfig::default()
            .with_tau(0.3)
            .with_variant(ModelVariant::DcFactors)
            .with_source("Flight", "Source");
        assert_eq!(c.tau, 0.3);
        assert_eq!(c.variant, ModelVariant::DcFactors);
        assert_eq!(c.source.as_ref().unwrap().entity_attr, "Flight");
    }

    #[test]
    fn score_cache_defaults_on_and_toggles() {
        let c = HoloConfig::default();
        assert!(c.score_cache);
        assert!(!c.with_score_cache(false).score_cache);
    }

    #[test]
    fn packed_learn_defaults_on_and_toggles() {
        let c = HoloConfig::default();
        assert!(c.packed_learn());
        assert!(!c.with_packed_learn(false).packed_learn());
    }

    #[test]
    fn naive_stats_defaults_off_and_toggles() {
        let c = HoloConfig::default();
        assert!(!c.naive_stats);
        assert!(c.with_naive_stats(true).naive_stats);
    }

    #[test]
    fn cor_strength_defaults_off_and_toggles() {
        let c = HoloConfig::default();
        assert!(c.cor_strength.is_none());
        assert_eq!(c.with_cor_strength(Some(0.3)).cor_strength, Some(0.3));
    }
}
