//! Deterministic data-parallel primitives for the HoloClean pipeline.
//!
//! The build environment is offline, so rayon is unavailable; this crate
//! provides the small parallel vocabulary the staged engine needs, built on
//! `std::thread::scope`. Every operation here has a hard determinism
//! contract: **the result is identical for every thread count**, including
//! `threads = 1`, which runs inline on the caller's stack with no pool at
//! all. Parallel maps split the input into contiguous chunks, each worker
//! produces its chunk's outputs in input order, and chunks are concatenated
//! in order — so a pure `f` yields bit-for-bit the sequential result.
//! [`sharded_fold`] extends the contract to reductions whose merge is
//! order-sensitive (floating-point sums, sparse accumulators) by fixing the
//! shard boundaries independently of the thread count.
//!
//! Work sizing: spawning threads costs ~10µs each, so [`parallel_map`]
//! falls back to the inline path for inputs smaller than
//! [`MIN_PARALLEL_ITEMS`] items.

use std::num::NonZeroUsize;

/// Below this many items a parallel map runs inline — thread spawn overhead
/// would dominate.
pub const MIN_PARALLEL_ITEMS: usize = 64;

/// Below this much total work (an arbitrary caller-estimated unit, e.g.
/// `rows × pairs` for a statistics build or probe count for a blocking
/// join) a job-style dispatch should run sequentially. [`parallel_jobs`]
/// has no per-item cutoff of its own — jobs are assumed coarse — so
/// callers with data-dependent job sizes clamp their thread count with
/// [`sized_threads`] instead.
pub const MIN_PARALLEL_WORK: usize = 4096;

/// Clamps a configured thread count to `1` when the estimated total
/// `work` is below [`MIN_PARALLEL_WORK`], so tiny inputs never pay thread
/// spawn overhead. Pure sizing — results are identical either way under
/// this crate's determinism contract.
pub fn sized_threads(threads: usize, work: usize) -> usize {
    if work < MIN_PARALLEL_WORK {
        1
    } else {
        effective_threads(threads)
    }
}

/// Resolves a configured thread-count knob: `0` means "all cores"
/// (`std::thread::available_parallelism`), anything else is taken as-is.
pub fn effective_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        configured
    }
}

/// Maps `f` over `items` with up to `threads` worker threads, returning
/// outputs in input order. `f(index, item)` receives the item's index in
/// `items`. Deterministic for pure `f` regardless of `threads`.
pub fn parallel_map<T: Sync, R: Send, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R + Sync,
{
    let f = &f;
    parallel_chunks(threads, items, |offset, chunk| {
        chunk
            .iter()
            .enumerate()
            .map(|(i, t)| f(offset + i, t))
            .collect()
    })
}

/// [`parallel_map`] followed by an in-order flatten: each item may produce
/// any number of outputs and the concatenation order matches the sequential
/// `flat_map`.
pub fn parallel_flat_map<T: Sync, R: Send, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> Vec<R> + Sync,
{
    let f = &f;
    parallel_chunks(threads, items, |offset, chunk| {
        chunk
            .iter()
            .enumerate()
            .flat_map(|(i, t)| f(offset + i, t))
            .collect()
    })
}

/// The chunk-level primitive under [`parallel_map`]: `f(offset, chunk)`
/// receives a contiguous sub-slice starting at `items[offset]` and returns
/// that chunk's outputs in item order; chunk outputs concatenate in chunk
/// order. Use directly when per-item work wants per-chunk reusable scratch
/// (a buffer allocated once per chunk instead of once per item).
/// Determinism contract: the outputs must depend only on the items, never
/// on the chunking — with that, the result is identical for every thread
/// count, and `threads = 1` (or a small input) runs `f(0, items)` inline
/// with no pool.
pub fn parallel_chunks<T: Sync, R: Send, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    let threads = effective_threads(threads).min(items.len()).max(1);
    if threads == 1 || items.len() < MIN_PARALLEL_ITEMS {
        return f(0, items);
    }
    spawn_ranges(threads, items.len(), |start, len| {
        f(start, &items[start..start + len])
    })
}

/// Runs `n` independent jobs (indexed `0..n`) on up to `threads` threads
/// and returns their results in index order. Unlike [`parallel_map`] there
/// is no minimum-size cutoff: jobs are assumed coarse (e.g. one Gibbs
/// chain or one full-column statistics scan each).
pub fn parallel_jobs<R: Send, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(threads).min(n).max(1);
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    spawn_ranges(threads, n, |start, len| {
        (start..start + len).map(f).collect()
    })
}

/// Fills `out` in place by cutting it into **fixed-size** chunks of
/// `chunk_len` (the last may be shorter) and running `f(chunk_index,
/// chunk)` for each on up to `threads` worker threads — the in-place
/// counterpart of [`parallel_chunks`] for hot loops that own a reusable
/// output buffer and must not allocate per call. Chunk boundaries depend
/// only on `chunk_len` and `out.len()`, never on the thread count, so a
/// pure `f` writes bit-for-bit the same bytes at every thread count;
/// `threads = 1` (or a single chunk) runs inline with no pool.
pub fn parallel_chunks_mut<T: Send, F>(threads: usize, out: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunks: Vec<(usize, &mut [T])> = out.chunks_mut(chunk_len.max(1)).enumerate().collect();
    let n = chunks.len();
    let threads = effective_threads(threads).min(n).max(1);
    if threads == 1 || n <= 1 {
        for (b, chunk) in chunks {
            f(b, chunk);
        }
        return;
    }
    // Deal the chunk list into contiguous per-thread runs (first
    // `n % threads` runs one chunk longer), mirroring `spawn_ranges`.
    let base = n / threads;
    let remainder = n % threads;
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        let mut rest = chunks;
        for w in 0..threads {
            let len = base + usize::from(w < remainder);
            let tail = rest.split_off(len);
            let mine = std::mem::replace(&mut rest, tail);
            handles.push(scope.spawn(move || {
                for (b, chunk) in mine {
                    f(b, chunk);
                }
            }));
        }
        for h in handles {
            join_propagating(h);
        }
    });
}

/// [`parallel_jobs`] with cost-aware dispatch: jobs are handed to workers
/// **longest-estimated-first** (descending `weight(i)`, ties broken by
/// ascending index) instead of being pre-split into contiguous index
/// ranges, so one expensive job no longer pins a whole range's tail behind
/// it. Results are still merged **by original index**, so for a pure `f`
/// the output is identical to [`parallel_jobs`] — the weights steer
/// wall-clock only, never the result. `weight` is evaluated once per job
/// on the caller's thread before any worker starts.
pub fn parallel_jobs_weighted<R: Send, F, W>(threads: usize, n: usize, weight: W, f: F) -> Vec<R>
where
    F: Fn(usize) -> R + Sync,
    W: Fn(usize) -> u64,
{
    let threads = effective_threads(threads).min(n).max(1);
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let weights: Vec<u64> = (0..n).map(weight).collect();
    let order = weighted_order(&weights);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (f, order, cursor) = (&f, &order, &cursor);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(&i) = order.get(k) else { break };
                        done.push((i, f(i)));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in join_propagating(h) {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every job index dispatched exactly once"))
        .collect()
}

/// The dispatch order under [`parallel_jobs_weighted`]: job indices sorted
/// by descending weight, ties by ascending index — deterministic for a
/// given weight vector.
fn weighted_order(weights: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    order
}

/// Splits `items` into **fixed-size** shards, folds each shard with
/// `fold` on up to `threads` worker threads, and reduces the shard
/// accumulators strictly in shard order with `merge`. Returns `None` for
/// empty input.
///
/// This is the deterministic stand-in for a parallel reduce: because the
/// shard boundaries depend only on `shard_size` — never on the thread
/// count — the merge applies the exact same accumulator sequence in the
/// exact same order at every thread count, so even order-sensitive merges
/// (floating-point sums, sparse gradient accumulators) are bit-for-bit
/// identical to `threads = 1`. Shards are treated as coarse jobs (no
/// minimum-size cutoff, like [`parallel_jobs`]): pick `shard_size` so one
/// shard amortises a thread hop, and so `items.len() / shard_size`
/// comfortably exceeds the core count.
pub fn sharded_fold<T: Sync, A: Send, F, M>(
    threads: usize,
    items: &[T],
    shard_size: usize,
    fold: F,
    merge: M,
) -> Option<A>
where
    F: Fn(&[T]) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let shards: Vec<&[T]> = items.chunks(shard_size.max(1)).collect();
    let accs = parallel_jobs(threads, shards.len(), |i| fold(shards[i]));
    accs.into_iter().reduce(merge)
}

/// [`sharded_fold`] with **per-worker reusable scratch**: each worker
/// thread folds its contiguous run of shards through one `&mut S` drawn
/// from `scratches`, so shard folds can reuse large buffers (stamp
/// arrays, gather buffers) instead of reallocating them per shard. At
/// most `scratches.len()` workers run — size the slice with
/// [`effective_threads`] of the intended budget.
///
/// Determinism contract: shard boundaries depend only on `shard_size`
/// and accumulators still merge strictly in shard order, exactly like
/// [`sharded_fold`] — but the *caller* must guarantee that `fold`'s
/// result for a shard does not depend on which scratch instance it
/// receives or on what earlier shards left inside it (reset the scratch
/// at fold entry, e.g. with a generation stamp). With that, the result
/// is bit-for-bit identical at every thread count, including the inline
/// `threads = 1` path that reuses `scratches[0]` for every shard.
pub fn sharded_fold_scratch<T: Sync, S: Send, A: Send, F, M>(
    threads: usize,
    items: &[T],
    shard_size: usize,
    scratches: &mut [S],
    fold: F,
    merge: M,
) -> Option<A>
where
    F: Fn(&mut S, &[T]) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    assert!(
        !scratches.is_empty(),
        "sharded_fold_scratch needs at least one scratch"
    );
    let shards: Vec<&[T]> = items.chunks(shard_size.max(1)).collect();
    let n = shards.len();
    let workers = effective_threads(threads)
        .min(n)
        .min(scratches.len())
        .max(1);
    if workers == 1 {
        let scratch = &mut scratches[0];
        return shards
            .into_iter()
            .map(|shard| fold(scratch, shard))
            .reduce(merge);
    }
    // Contiguous shard runs per worker (first `n % workers` runs one
    // shard longer), mirroring `spawn_ranges`; outputs concatenate in
    // worker order = shard order before the in-order reduce.
    let base = n / workers;
    let remainder = n % workers;
    let mut results: Vec<Vec<A>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let (fold, shards) = (&fold, &shards);
        let mut handles = Vec::with_capacity(workers);
        let mut start = 0usize;
        for (w, scratch) in scratches.iter_mut().take(workers).enumerate() {
            let len = base + usize::from(w < remainder);
            let offset = start;
            start += len;
            handles.push(scope.spawn(move || {
                shards[offset..offset + len]
                    .iter()
                    .map(|shard| fold(scratch, shard))
                    .collect::<Vec<A>>()
            }));
        }
        for h in handles {
            results.push(join_propagating(h));
        }
    });
    results.into_iter().flatten().reduce(merge)
}

/// The shared spawn/merge scaffolding: splits `0..n` into `threads`
/// contiguous ranges (the first `n % threads` one element longer), runs
/// `f(start, len)` for each on a scoped thread, and concatenates the
/// per-range outputs in range order. Callers handle their own sequential
/// cutoffs before reaching here.
fn spawn_ranges<R: Send, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    F: Fn(usize, usize) -> Vec<R> + Sync,
{
    let base = n / threads;
    let remainder = n % threads;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0usize;
        for w in 0..threads {
            let len = base + usize::from(w < remainder);
            let offset = start;
            start += len;
            handles.push(scope.spawn(move || f(offset, len)));
        }
        for h in handles {
            results.push(join_propagating(h));
        }
    });
    results.into_iter().flatten().collect()
}

/// Joins a worker, re-raising its panic with the original payload — an
/// `expect` here would bury the worker's own message and location under a
/// generic one.
fn join_propagating<R>(h: std::thread::ScopedJoinHandle<'_, R>) -> R {
    h.join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_zero_means_all_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn sized_threads_clamps_small_work_to_sequential() {
        assert_eq!(sized_threads(8, 0), 1);
        assert_eq!(sized_threads(8, MIN_PARALLEL_WORK - 1), 1);
        assert_eq!(sized_threads(8, MIN_PARALLEL_WORK), 8);
        // `0` still means "all cores" once the work is large enough.
        assert!(sized_threads(0, MIN_PARALLEL_WORK) >= 1);
    }

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..1000).collect();
        let sequential = parallel_map(1, &items, |i, &x| i * 1000 + x * x);
        for threads in [2, 3, 4, 7, 16, 1000] {
            let parallel = parallel_map(threads, &items, |i, &x| i * 1000 + x * x);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(8, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn empty_input() {
        let items: [u8; 0] = [];
        assert!(parallel_map(4, &items, |_, &x| x).is_empty());
        assert!(parallel_jobs(4, 0, |i| i).is_empty());
    }

    #[test]
    fn flat_map_matches_sequential_flatten() {
        let items: Vec<usize> = (0..500).collect();
        let f = |_i: usize, &x: &usize| (0..x % 4).map(|k| (x, k)).collect::<Vec<_>>();
        let seq: Vec<_> = items
            .iter()
            .enumerate()
            .flat_map(|(i, t)| f(i, t))
            .collect();
        assert_eq!(parallel_flat_map(5, &items, f), seq);
    }

    #[test]
    fn chunks_see_contiguous_offsets() {
        let items: Vec<usize> = (0..300).collect();
        for threads in [1, 2, 5, 8] {
            let out = parallel_chunks(threads, &items, |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        assert_eq!(items[offset + i], x, "offset/chunk misaligned");
                        x * 2
                    })
                    .collect()
            });
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_return_in_index_order() {
        let out = parallel_jobs(4, 9, |i| i * 10);
        assert_eq!(out, (0..9).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_actually_parallel_when_asked() {
        // Structural overlap check (immune to scheduler load, unlike a
        // wall-clock bound): record each job's [start, end) interval and
        // require that at least one pair overlaps.
        let t0 = std::time::Instant::now();
        let spans = parallel_jobs(4, 4, |_| {
            let begin = t0.elapsed();
            std::thread::sleep(std::time::Duration::from_millis(40));
            (begin, t0.elapsed())
        });
        let overlapping = spans
            .iter()
            .enumerate()
            .any(|(i, &(s1, e1))| spans.iter().skip(i + 1).any(|&(s2, e2)| s1 < e2 && s2 < e1));
        assert!(overlapping, "no two jobs overlapped: {spans:?}");
    }

    #[test]
    fn chunks_mut_fills_like_the_sequential_loop() {
        let reference: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            for chunk_len in [1, 7, 64, 300] {
                let mut out = vec![0usize; 257];
                parallel_chunks_mut(threads, &mut out, chunk_len, |b, chunk| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = (b * chunk_len + i) * 3 + 1;
                    }
                });
                assert_eq!(out, reference, "threads = {threads}, chunk = {chunk_len}");
            }
        }
    }

    #[test]
    fn chunks_mut_empty_output_is_fine() {
        let mut out: [u8; 0] = [];
        parallel_chunks_mut(4, &mut out, 8, |_, _| panic!("no chunks to run"));
    }

    #[test]
    fn weighted_jobs_match_plain_jobs_for_any_weights() {
        let f = |i: usize| i * i + 7;
        let reference = parallel_jobs(1, 23, f);
        for threads in [1, 2, 3, 4, 8] {
            for weight in [
                |_: usize| 0u64,
                |i: usize| i as u64,
                |i: usize| (23 - i) as u64,
                |i: usize| (i as u64).wrapping_mul(0x9E37_79B9) % 11,
            ] {
                let out = parallel_jobs_weighted(threads, 23, weight, f);
                assert_eq!(out, reference, "threads = {threads}");
            }
        }
    }

    #[test]
    fn weighted_order_is_longest_first_with_index_ties() {
        assert_eq!(weighted_order(&[5, 9, 9, 1, 7]), vec![1, 2, 4, 0, 3]);
        assert_eq!(weighted_order(&[3, 3, 3]), vec![0, 1, 2]);
        assert_eq!(weighted_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn weighted_jobs_actually_parallel_when_asked() {
        let t0 = std::time::Instant::now();
        let spans = parallel_jobs_weighted(
            4,
            4,
            |i| i as u64,
            |_| {
                let begin = t0.elapsed();
                std::thread::sleep(std::time::Duration::from_millis(40));
                (begin, t0.elapsed())
            },
        );
        let overlapping = spans
            .iter()
            .enumerate()
            .any(|(i, &(s1, e1))| spans.iter().skip(i + 1).any(|&(s2, e2)| s1 < e2 && s2 < e1));
        assert!(overlapping, "no two jobs overlapped: {spans:?}");
    }

    #[test]
    #[should_panic(expected = "weighted worker message")]
    fn weighted_worker_panics_keep_their_payload() {
        parallel_jobs_weighted(
            4,
            16,
            |_| 1,
            |i| {
                if i == 11 {
                    panic!("weighted worker message");
                }
                i
            },
        );
    }

    /// Floating-point shard sums are merged in shard order, so the result
    /// is bit-for-bit identical at every thread count (the whole point of
    /// fixing the shard boundaries instead of chunking by thread).
    #[test]
    fn sharded_fold_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = |threads| {
            sharded_fold(
                threads,
                &items,
                37,
                |shard| shard.iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let reference = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                run(threads).to_bits(),
                reference.to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn sharded_fold_empty_input_is_none() {
        let items: [u8; 0] = [];
        assert_eq!(sharded_fold(4, &items, 8, |s| s.len(), |a, b| a + b), None);
    }

    /// The scratch-carrying fold matches `sharded_fold` bit-for-bit at
    /// every thread count when the fold resets its scratch on entry —
    /// including with fewer scratches than requested threads.
    #[test]
    fn sharded_fold_scratch_matches_plain_fold() {
        let items: Vec<f64> = (0..500).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reference = sharded_fold(
            1,
            &items,
            23,
            |shard| shard.iter().sum::<f64>(),
            |a, b| a + b,
        )
        .unwrap();
        for threads in [1usize, 2, 3, 8] {
            for n_scratches in [1usize, 2, threads.max(1)] {
                // A scratch that must be reset on entry: reused buffer.
                let mut scratches: Vec<Vec<f64>> = vec![Vec::new(); n_scratches];
                let out = sharded_fold_scratch(
                    threads,
                    &items,
                    23,
                    &mut scratches,
                    |buf, shard| {
                        buf.clear();
                        buf.extend_from_slice(shard);
                        buf.iter().sum::<f64>()
                    },
                    |a, b| a + b,
                )
                .unwrap();
                assert_eq!(
                    out.to_bits(),
                    reference.to_bits(),
                    "threads = {threads}, scratches = {n_scratches}"
                );
            }
        }
    }

    #[test]
    fn sharded_fold_scratch_empty_input_is_none() {
        let items: [u8; 0] = [];
        let mut scratches = [0u8];
        assert_eq!(
            sharded_fold_scratch(4, &items, 8, &mut scratches, |_, s| s.len(), |a, b| a + b),
            None
        );
    }

    #[test]
    fn sharded_fold_scratch_merge_sees_shard_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 7] {
            let mut scratches: Vec<()> = vec![(); effective_threads(threads)];
            let merged = sharded_fold_scratch(
                threads,
                &items,
                9,
                &mut scratches,
                |(), shard| shard.to_vec(),
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
            assert_eq!(merged, items, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_fold_merge_sees_shard_order() {
        // Record which shard offsets the merge concatenates: must be the
        // items in order, regardless of threads.
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 7] {
            let merged = sharded_fold(
                threads,
                &items,
                9,
                |shard| shard.to_vec(),
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
            assert_eq!(merged, items, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "original worker message")]
    fn worker_panics_keep_their_payload() {
        let items: Vec<usize> = (0..200).collect();
        parallel_map(4, &items, |i, _| {
            if i == 137 {
                panic!("original worker message");
            }
            i
        });
    }
}
