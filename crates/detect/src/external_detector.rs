//! External-data error detection [5, 13, 19]: a cell contradicted by every
//! matched dictionary row is suspicious.

use crate::{Detector, NoisyCells};
use holo_dataset::Dataset;
use holo_external::{DictId, ExtDict, Matcher, MatchingDependency};

/// Flags cells whose observed value disagrees with *all* values asserted by
/// matched external-dictionary rows (agreement with any assertion clears
/// the cell — dictionaries may legitimately contain several variants).
pub struct ExternalDetector {
    dict: ExtDict,
    dependencies: Vec<MatchingDependency>,
}

impl ExternalDetector {
    /// Builds the detector from a dictionary and its matching dependencies.
    pub fn new(dict: ExtDict, dependencies: Vec<MatchingDependency>) -> Self {
        ExternalDetector { dict, dependencies }
    }
}

impl Detector for ExternalDetector {
    fn name(&self) -> &str {
        "external-dict"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        let matcher = Matcher::new(&self.dict, DictId(0));
        for md in &self.dependencies {
            let Ok(matches) = matcher.find_matches(ds, md) else {
                continue;
            };
            // Group assertions per cell; flag cells that agree with none.
            let mut i = 0;
            while i < matches.len() {
                let cell = matches[i].cell;
                let mut agrees = false;
                let mut j = i;
                while j < matches.len() && matches[j].cell == cell {
                    if ds.cell_str(cell.tuple, cell.attr) == matches[j].value {
                        agrees = true;
                    }
                    j += 1;
                }
                if !agrees {
                    noisy.insert(cell);
                }
                i = j;
            }
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_dataset::{CellRef, Schema};

    fn dict() -> ExtDict {
        ExtDict::from_csv("addr", "Ext_Zip,Ext_City\n60608,Chicago\n60610,Chicago\n").unwrap()
    }

    #[test]
    fn flags_contradicted_cells() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Cicago"]); // contradicts dictionary
        ds.push_row(&["60610", "Chicago"]); // agrees
        ds.push_row(&["99999", "Nowhere"]); // no dictionary coverage
        let md = MatchingDependency::equalities("m", &[("Zip", "Ext_Zip")], ("City", "Ext_City"));
        let det = ExternalDetector::new(dict(), vec![md]);
        let noisy = det.detect(&ds);
        assert_eq!(noisy.len(), 1);
        assert!(noisy.contains(&CellRef::new(0usize, 1usize)));
    }

    #[test]
    fn agreement_with_any_assertion_clears() {
        let dict =
            ExtDict::from_csv("d", "Ext_Zip,Ext_City\n60608,Chicago\n60608,Cicero\n").unwrap();
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Cicero"]);
        let md = MatchingDependency::equalities("m", &[("Zip", "Ext_Zip")], ("City", "Ext_City"));
        let det = ExternalDetector::new(dict, vec![md]);
        assert!(det.detect(&ds).is_empty());
    }
}
