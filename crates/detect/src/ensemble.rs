//! Detector ensembles and the noisy/clean split.

use crate::{Detector, NoisyCells};
use holo_dataset::{CellRef, Dataset};

/// Union of several detectors: a cell is noisy if *any* member flags it.
/// The paper's implementation "included a series of error detection
/// methods" (§2.2); ensembles of detectors are the configuration shown to
/// reach usable recall in \[2\].
#[derive(Default)]
pub struct DetectorEnsemble {
    detectors: Vec<Box<dyn Detector + Send + Sync>>,
}

impl DetectorEnsemble {
    /// An empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a detector (builder style).
    pub fn with(mut self, d: impl Detector + Send + Sync + 'static) -> Self {
        self.detectors.push(Box::new(d));
        self
    }

    /// Adds a boxed detector.
    pub fn push(&mut self, d: Box<dyn Detector + Send + Sync>) {
        self.detectors.push(d);
    }

    /// Number of member detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Runs every member and unions the results into `D_n`.
    pub fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        for d in &self.detectors {
            noisy.extend(d.detect(ds));
        }
        noisy
    }

    /// Splits the dataset's cells into `(D_n, D_c)` — noisy and clean.
    pub fn partition(&self, ds: &Dataset) -> (NoisyCells, Vec<CellRef>) {
        let noisy = self.detect(ds);
        let clean = ds.cells().filter(|c| !noisy.contains(c)).collect();
        (noisy, clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null_detector::NullDetector;
    use crate::violation_detector::ViolationDetector;
    use holo_constraints::parse_constraints;
    use holo_dataset::Schema;

    #[test]
    fn union_of_members() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        ds.push_row(&["", "Evanston"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let ensemble = DetectorEnsemble::new()
            .with(ViolationDetector::new(cons))
            .with(NullDetector::all());
        let noisy = ensemble.detect(&ds);
        // 4 violation cells + 1 null cell.
        assert_eq!(noisy.len(), 5);
    }

    #[test]
    fn partition_covers_all_cells() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let ensemble = DetectorEnsemble::new().with(ViolationDetector::new(cons));
        let (noisy, clean) = ensemble.partition(&ds);
        assert_eq!(noisy.len() + clean.len(), ds.cell_count());
        for c in &clean {
            assert!(!noisy.contains(c));
        }
    }

    #[test]
    fn empty_ensemble_flags_nothing() {
        let mut ds = Dataset::new(Schema::new(vec!["a"]));
        ds.push_row(&["x"]);
        let ensemble = DetectorEnsemble::new();
        assert!(ensemble.is_empty());
        let (noisy, clean) = ensemble.partition(&ds);
        assert!(noisy.is_empty());
        assert_eq!(clean.len(), 1);
    }
}
