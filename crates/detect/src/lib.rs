//! Error detection for HoloClean.
//!
//! §2.2 of the paper: "The first step in the workflow of HoloClean is to
//! detect cells in D with potentially inaccurate values. This process
//! separates D into noisy and clean cells … HoloClean treats error
//! detection as a black box."
//!
//! This crate provides that black box as a [`Detector`] trait plus the
//! detectors the paper's implementation shipped:
//!
//! * [`ViolationDetector`] — cells participating in denial-constraint
//!   violations \[11\]; the detector used for every experiment in §6
//!   ("for all datasets we seek to repair cells that participate in
//!   violations of integrity constraints").
//! * [`OutlierDetector`] — frequency/similarity outliers \[15, 22\]: rare
//!   values lying within small edit distance of a frequent value of the
//!   same attribute.
//! * [`NullDetector`] — missing values.
//! * [`ExternalDetector`] — cells contradicted by a matched external
//!   dictionary row \[13, 19\].
//! * [`DetectorEnsemble`] — union of detectors, producing the
//!   noisy/clean split `(D_n, D_c)`.

pub mod ensemble;
pub mod external_detector;
pub mod null_detector;
pub mod outlier;
pub mod violation_detector;

use holo_dataset::{CellRef, Dataset, FxHashSet};

/// The noisy-cell set `D_n` produced by detection.
pub type NoisyCells = FxHashSet<CellRef>;

/// A black-box error detector.
pub trait Detector {
    /// Human-readable detector name (for reports).
    fn name(&self) -> &str;
    /// Returns the cells this detector considers potentially erroneous.
    fn detect(&self, ds: &Dataset) -> NoisyCells;
}

pub use ensemble::DetectorEnsemble;
pub use external_detector::ExternalDetector;
pub use null_detector::NullDetector;
pub use outlier::OutlierDetector;
pub use violation_detector::ViolationDetector;
