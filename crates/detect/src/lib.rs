//! Error detection for HoloClean.
//!
//! §2.2 of the paper: "The first step in the workflow of HoloClean is to
//! detect cells in D with potentially inaccurate values. This process
//! separates D into noisy and clean cells … HoloClean treats error
//! detection as a black box."
//!
//! This crate provides that black box as a [`Detector`] trait plus the
//! detectors the paper's implementation shipped:
//!
//! * [`ViolationDetector`] — cells participating in denial-constraint
//!   violations \[11\]; the detector used for every experiment in §6
//!   ("for all datasets we seek to repair cells that participate in
//!   violations of integrity constraints").
//! * [`OutlierDetector`] — frequency/similarity outliers \[15, 22\]: rare
//!   values lying within small edit distance of a frequent value of the
//!   same attribute.
//! * [`NullDetector`] — missing values.
//! * [`ExternalDetector`] — cells contradicted by a matched external
//!   dictionary row \[13, 19\].
//! * [`DetectorEnsemble`] — union of detectors, producing the
//!   noisy/clean split `(D_n, D_c)`.

pub mod ensemble;
pub mod external_detector;
pub mod null_detector;
pub mod outlier;
pub mod violation_detector;

use holo_dataset::{CellRef, Dataset, FxHashSet, TupleId};

/// The noisy-cell set `D_n` produced by detection.
pub type NoisyCells = FxHashSet<CellRef>;

/// A black-box error detector.
pub trait Detector {
    /// Human-readable detector name (for reports).
    fn name(&self) -> &str;
    /// Returns the cells this detector considers potentially erroneous.
    fn detect(&self, ds: &Dataset) -> NoisyCells;

    /// Streaming entry point: the tuples `first_new..` were just appended;
    /// return every cell this detector *newly* flags because of them. A
    /// streaming caller unions the per-batch results, so the contract is:
    /// the union over all batches must equal [`Detector::detect`] on the
    /// final dataset.
    ///
    /// The default runs a full [`Detector::detect`] and keeps the cells on
    /// the new tuples — correct for detectors whose verdict on a cell
    /// depends only on that cell's tuple (e.g. [`NullDetector`]).
    /// Detectors whose old-tuple verdicts can change as data accumulates
    /// **must override**: [`OutlierDetector`] re-flags everything (its
    /// frequency baseline moves with every batch), and
    /// [`ViolationDetector`] returns all cells of violations *involving* a
    /// new tuple — including the old partner cells those violations newly
    /// implicate.
    fn detect_delta(&self, ds: &Dataset, first_new: TupleId) -> NoisyCells {
        self.detect(ds)
            .into_iter()
            .filter(|c| c.tuple >= first_new)
            .collect()
    }
}

pub use ensemble::DetectorEnsemble;
pub use external_detector::ExternalDetector;
pub use null_detector::NullDetector;
pub use outlier::OutlierDetector;
pub use violation_detector::ViolationDetector;
