//! Missing-value detection.

use crate::{Detector, NoisyCells};
use holo_dataset::{CellRef, Dataset, TupleId};

/// Flags every null (empty) cell, optionally restricted to a subset of
/// attributes (some attributes are legitimately optional).
#[derive(Debug, Clone, Default)]
pub struct NullDetector {
    /// If non-empty, only these attributes are checked.
    attrs: Vec<String>,
}

impl NullDetector {
    /// Detector over all attributes.
    pub fn all() -> Self {
        NullDetector { attrs: Vec::new() }
    }

    /// Detector restricted to the named attributes.
    pub fn for_attrs<S: Into<String>>(attrs: Vec<S>) -> Self {
        NullDetector {
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }
}

impl Detector for NullDetector {
    fn name(&self) -> &str {
        "nulls"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        let attrs: Vec<_> = if self.attrs.is_empty() {
            ds.schema().attrs().collect()
        } else {
            self.attrs
                .iter()
                .filter_map(|n| ds.schema().attr_id(n))
                .collect()
        };
        for a in attrs {
            for (i, sym) in ds.column(a).iter().enumerate() {
                if sym.is_null() {
                    noisy.insert(CellRef {
                        tuple: i.into(),
                        attr: a,
                    });
                }
            }
        }
        noisy
    }

    /// True delta: a cell is null independently of every other tuple, so
    /// only the appended rows need scanning — `O(batch)`, not `O(|D|)`.
    fn detect_delta(&self, ds: &Dataset, first_new: TupleId) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        let attrs: Vec<_> = if self.attrs.is_empty() {
            ds.schema().attrs().collect()
        } else {
            self.attrs
                .iter()
                .filter_map(|n| ds.schema().attr_id(n))
                .collect()
        };
        for a in attrs {
            for (i, sym) in ds.column(a).iter().enumerate().skip(first_new.index()) {
                if sym.is_null() {
                    noisy.insert(CellRef {
                        tuple: i.into(),
                        attr: a,
                    });
                }
            }
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_dataset::Schema;

    #[test]
    fn flags_all_nulls() {
        let mut ds = Dataset::new(Schema::new(vec!["a", "b"]));
        ds.push_row(&["", "x"]);
        ds.push_row(&["y", ""]);
        ds.push_row(&["z", "w"]);
        let noisy = NullDetector::all().detect(&ds);
        assert_eq!(noisy.len(), 2);
        assert!(noisy.contains(&CellRef::new(0usize, 0usize)));
        assert!(noisy.contains(&CellRef::new(1usize, 1usize)));
    }

    #[test]
    fn attribute_restriction() {
        let mut ds = Dataset::new(Schema::new(vec!["a", "b"]));
        ds.push_row(&["", ""]);
        let noisy = NullDetector::for_attrs(vec!["b"]).detect(&ds);
        assert_eq!(noisy.len(), 1);
        assert!(noisy.contains(&CellRef::new(0usize, 1usize)));
    }

    #[test]
    fn delta_scans_only_new_tuples_but_unions_to_full() {
        let mut ds = Dataset::new(Schema::new(vec!["a", "b"]));
        ds.push_row(&["", "x"]);
        let d = NullDetector::all();
        let mut union = d.detect_delta(&ds, 0usize.into());
        let first = ds.append_rows(&[vec!["y", ""], vec!["", "w"]]);
        let delta = d.detect_delta(&ds, first);
        assert_eq!(delta.len(), 2, "only batch cells reported");
        assert!(delta.iter().all(|c| c.tuple >= first));
        union.extend(delta);
        assert_eq!(union, d.detect(&ds), "batch union == one-shot detect");
    }

    #[test]
    fn unknown_attrs_ignored() {
        let mut ds = Dataset::new(Schema::new(vec!["a"]));
        ds.push_row(&[""]);
        let noisy = NullDetector::for_attrs(vec!["nope"]).detect(&ds);
        assert!(noisy.is_empty());
    }
}
