//! Missing-value detection.

use crate::{Detector, NoisyCells};
use holo_dataset::{CellRef, Dataset};

/// Flags every null (empty) cell, optionally restricted to a subset of
/// attributes (some attributes are legitimately optional).
#[derive(Debug, Clone, Default)]
pub struct NullDetector {
    /// If non-empty, only these attributes are checked.
    attrs: Vec<String>,
}

impl NullDetector {
    /// Detector over all attributes.
    pub fn all() -> Self {
        NullDetector { attrs: Vec::new() }
    }

    /// Detector restricted to the named attributes.
    pub fn for_attrs<S: Into<String>>(attrs: Vec<S>) -> Self {
        NullDetector {
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }
}

impl Detector for NullDetector {
    fn name(&self) -> &str {
        "nulls"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        let attrs: Vec<_> = if self.attrs.is_empty() {
            ds.schema().attrs().collect()
        } else {
            self.attrs
                .iter()
                .filter_map(|n| ds.schema().attr_id(n))
                .collect()
        };
        for a in attrs {
            for (i, sym) in ds.column(a).iter().enumerate() {
                if sym.is_null() {
                    noisy.insert(CellRef {
                        tuple: i.into(),
                        attr: a,
                    });
                }
            }
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_dataset::Schema;

    #[test]
    fn flags_all_nulls() {
        let mut ds = Dataset::new(Schema::new(vec!["a", "b"]));
        ds.push_row(&["", "x"]);
        ds.push_row(&["y", ""]);
        ds.push_row(&["z", "w"]);
        let noisy = NullDetector::all().detect(&ds);
        assert_eq!(noisy.len(), 2);
        assert!(noisy.contains(&CellRef::new(0usize, 0usize)));
        assert!(noisy.contains(&CellRef::new(1usize, 1usize)));
    }

    #[test]
    fn attribute_restriction() {
        let mut ds = Dataset::new(Schema::new(vec!["a", "b"]));
        ds.push_row(&["", ""]);
        let noisy = NullDetector::for_attrs(vec!["b"]).detect(&ds);
        assert_eq!(noisy.len(), 1);
        assert!(noisy.contains(&CellRef::new(0usize, 1usize)));
    }

    #[test]
    fn unknown_attrs_ignored() {
        let mut ds = Dataset::new(Schema::new(vec!["a"]));
        ds.push_row(&[""]);
        let noisy = NullDetector::for_attrs(vec!["nope"]).detect(&ds);
        assert!(noisy.is_empty());
    }
}
