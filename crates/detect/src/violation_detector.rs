//! Denial-constraint violation detection — the error detector used for all
//! of the paper's experiments.

use crate::{Detector, NoisyCells};
use holo_constraints::{find_violations, ConstraintSet};
use holo_dataset::Dataset;

/// Flags every cell participating in at least one violation.
#[derive(Debug, Clone)]
pub struct ViolationDetector {
    constraints: ConstraintSet,
}

impl ViolationDetector {
    /// Builds the detector over a constraint set.
    pub fn new(constraints: ConstraintSet) -> Self {
        ViolationDetector { constraints }
    }

    /// The constraints the detector checks.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }
}

impl Detector for ViolationDetector {
    fn name(&self) -> &str {
        "dc-violations"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        for v in find_violations(ds, &self.constraints) {
            noisy.extend(v.cells.iter().copied());
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_constraints::parse_constraints;
    use holo_dataset::{CellRef, Schema};

    #[test]
    fn flags_cells_in_violations() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        ds.push_row(&["60609", "Evanston"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let det = ViolationDetector::new(cons);
        let noisy = det.detect(&ds);
        // Cells of t0 and t1 (zip + city each) are flagged; t2 untouched.
        assert_eq!(noisy.len(), 4);
        assert!(noisy.contains(&CellRef::new(0usize, 0usize)));
        assert!(noisy.contains(&CellRef::new(1usize, 1usize)));
        assert!(!noisy.iter().any(|c| c.tuple.index() == 2));
    }

    #[test]
    fn clean_dataset_yields_empty() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60609", "Evanston"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        assert!(ViolationDetector::new(cons).detect(&ds).is_empty());
    }
}
