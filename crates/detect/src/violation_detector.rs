//! Denial-constraint violation detection — the error detector used for all
//! of the paper's experiments.

use crate::{Detector, NoisyCells};
use holo_constraints::{find_violations, ConstraintSet};
use holo_dataset::{Dataset, TupleId};

/// Flags every cell participating in at least one violation.
#[derive(Debug, Clone)]
pub struct ViolationDetector {
    constraints: ConstraintSet,
}

impl ViolationDetector {
    /// Builds the detector over a constraint set.
    pub fn new(constraints: ConstraintSet) -> Self {
        ViolationDetector { constraints }
    }

    /// The constraints the detector checks.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }
}

impl Detector for ViolationDetector {
    fn name(&self) -> &str {
        "dc-violations"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        for v in find_violations(ds, &self.constraints) {
            noisy.extend(v.cells.iter().copied());
        }
        noisy
    }

    /// Cells of the violations that *involve* a new tuple — including the
    /// cells of old partner tuples those violations newly implicate (the
    /// default trait filter would silently drop them). A stateless
    /// detector cannot keep a persistent blocking index, so this pays a
    /// full scan; the streaming engine itself uses
    /// [`holo_constraints::DeltaViolationIndex`], which probes only the
    /// batch.
    fn detect_delta(&self, ds: &Dataset, first_new: TupleId) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        for v in find_violations(ds, &self.constraints) {
            if v.t1 >= first_new || v.t2 >= first_new {
                noisy.extend(v.cells.iter().copied());
            }
        }
        noisy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_constraints::parse_constraints;
    use holo_dataset::{CellRef, Schema};

    #[test]
    fn flags_cells_in_violations() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60608", "Cicago"]);
        ds.push_row(&["60609", "Evanston"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let det = ViolationDetector::new(cons);
        let noisy = det.detect(&ds);
        // Cells of t0 and t1 (zip + city each) are flagged; t2 untouched.
        assert_eq!(noisy.len(), 4);
        assert!(noisy.contains(&CellRef::new(0usize, 0usize)));
        assert!(noisy.contains(&CellRef::new(1usize, 1usize)));
        assert!(!noisy.iter().any(|c| c.tuple.index() == 2));
    }

    #[test]
    fn delta_includes_old_partner_cells() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60609", "Evanston"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        let det = ViolationDetector::new(cons);
        assert!(det.detect(&ds).is_empty());
        // The appended tuple contradicts the *old* t0: both tuples' cells
        // must surface, not just the new one's.
        let first = ds.append_rows(&[vec!["60608", "Cicago"]]);
        let delta = det.detect_delta(&ds, first);
        assert_eq!(delta.len(), 4);
        assert!(delta.contains(&CellRef::new(0usize, 1usize)), "old partner");
        assert!(delta.contains(&CellRef::new(2usize, 1usize)), "new tuple");
        assert_eq!(delta, det.detect(&ds), "union == one-shot here");
    }

    #[test]
    fn clean_dataset_yields_empty() {
        let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
        ds.push_row(&["60608", "Chicago"]);
        ds.push_row(&["60609", "Evanston"]);
        let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
        assert!(ViolationDetector::new(cons).detect(&ds).is_empty());
    }
}
