//! Frequency/similarity outlier detection [15, 22].
//!
//! Two rules, both tunable:
//!
//! 1. **Typo rule** — a value is suspicious if it is rare *and* lies within
//!    high normalised similarity of a much more frequent value of the same
//!    attribute ("Cicago" vs "Chicago"). This is the behaviour that makes
//!    quantitative methods repair `t4.City` in Figure 1(G).
//! 2. **Rare-value rule** — a value whose relative frequency is below
//!    `min_ratio` in an attribute otherwise dominated by frequent values.

use crate::{Detector, NoisyCells};
use holo_constraints::similarity::normalized_similarity;
use holo_dataset::{CellRef, Dataset, FrequencyStats};

/// Configuration for [`OutlierDetector`].
#[derive(Debug, Clone, Copy)]
pub struct OutlierConfig {
    /// A value is "rare" if `count(v)/n < min_ratio`.
    pub min_ratio: f64,
    /// Similarity threshold for the typo rule.
    pub sim_threshold: f64,
    /// The frequent partner must be at least this many times more common.
    pub dominance: f64,
    /// Enable the plain rare-value rule (off by default — it is noisy on
    /// genuinely high-cardinality attributes).
    pub flag_rare: bool,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        OutlierConfig {
            min_ratio: 0.02,
            sim_threshold: 0.8,
            dominance: 5.0,
            flag_rare: false,
        }
    }
}

/// Statistical outlier detector.
#[derive(Debug, Clone, Default)]
pub struct OutlierDetector {
    config: OutlierConfig,
}

impl OutlierDetector {
    /// Detector with the given configuration.
    pub fn new(config: OutlierConfig) -> Self {
        OutlierDetector { config }
    }
}

impl Detector for OutlierDetector {
    fn name(&self) -> &str {
        "stat-outliers"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        let freq = FrequencyStats::build(ds);
        let n = ds.tuple_count() as f64;
        if n == 0.0 {
            return noisy;
        }
        for a in ds.schema().attrs() {
            // Partition the attribute's values into rare and frequent.
            let mut rare = Vec::new();
            let mut frequent = Vec::new();
            for (v, c) in freq.iter_attr(a) {
                if v.is_null() {
                    continue;
                }
                if f64::from(c) / n < self.config.min_ratio {
                    rare.push((v, c));
                } else {
                    frequent.push((v, c));
                }
            }
            let mut flagged: Vec<holo_dataset::Sym> = Vec::new();
            for &(v, c) in &rare {
                let is_typo = frequent.iter().any(|&(f, fc)| {
                    f64::from(fc) >= self.config.dominance * f64::from(c)
                        && normalized_similarity(ds.value_str(v), ds.value_str(f))
                            >= self.config.sim_threshold
                });
                if is_typo || self.config.flag_rare {
                    flagged.push(v);
                }
            }
            if flagged.is_empty() {
                continue;
            }
            for (i, &sym) in ds.column(a).iter().enumerate() {
                if flagged.contains(&sym) {
                    noisy.insert(CellRef {
                        tuple: (i).into(),
                        attr: a,
                    });
                }
            }
        }
        noisy
    }

    /// Frequency baselines move with every batch — a value that was
    /// common can become relatively rare, flipping *old* cells to noisy —
    /// so the only sound delta is a full re-detection. The streaming
    /// caller unions results, which is exactly the full set here.
    fn detect_delta(&self, ds: &Dataset, _first_new: holo_dataset::TupleId) -> NoisyCells {
        self.detect(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holo_dataset::Schema;

    fn city_ds() -> Dataset {
        let mut ds = Dataset::new(Schema::new(vec!["City"]));
        for _ in 0..50 {
            ds.push_row(&["Chicago"]);
        }
        ds.push_row(&["Cicago"]); // typo of a dominant value
        ds.push_row(&["Evanston"]); // legitimately rare, dissimilar
        ds
    }

    #[test]
    fn typo_rule_flags_similar_rare_values() {
        let ds = city_ds();
        let noisy = OutlierDetector::default().detect(&ds);
        assert_eq!(noisy.len(), 1);
        let cell = noisy.iter().next().unwrap();
        assert_eq!(ds.cell_str(cell.tuple, cell.attr), "Cicago");
    }

    #[test]
    fn rare_rule_off_by_default() {
        let ds = city_ds();
        let noisy = OutlierDetector::default().detect(&ds);
        assert!(!noisy
            .iter()
            .any(|c| ds.cell_str(c.tuple, c.attr) == "Evanston"));
    }

    #[test]
    fn rare_rule_flags_when_enabled() {
        let ds = city_ds();
        let noisy = OutlierDetector::new(OutlierConfig {
            flag_rare: true,
            ..OutlierConfig::default()
        })
        .detect(&ds);
        assert!(noisy
            .iter()
            .any(|c| ds.cell_str(c.tuple, c.attr) == "Evanston"));
    }

    #[test]
    fn uniform_attribute_produces_nothing() {
        let mut ds = Dataset::new(Schema::new(vec!["State"]));
        for i in 0..10 {
            ds.push_row(&[format!("S{i}")]);
        }
        // All values equally rare — no dominant partner, nothing flagged.
        let noisy = OutlierDetector::default().detect(&ds);
        assert!(noisy.is_empty());
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(Schema::new(vec!["a"]));
        assert!(OutlierDetector::default().detect(&ds).is_empty());
    }
}
