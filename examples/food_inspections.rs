//! End-to-end repair of the Food-inspections dataset with model-variant
//! ablation (the Figure 5 axis).
//!
//! ```text
//! cargo run --release --example food_inspections
//! ```
//!
//! Generates a scaled-down Chicago food-inspection catalog (duplicates
//! across years + non-systematic errors), then runs three model variants:
//! the relaxed `DcFeats` default, grounded `DcFactors` cliques with Gibbs
//! sampling, and the partitioned factor variant.

use holoclean_repro::holo_datagen::{food, FoodConfig};
use holoclean_repro::holoclean::{evaluate, HoloClean, HoloConfig, ModelVariant};

fn main() {
    let gen = food(FoodConfig {
        establishments: 400,
        ..FoodConfig::default()
    });
    println!(
        "Food inspections: {} rows x {} attrs, {} injected errors\n",
        gen.dirty.tuple_count(),
        gen.dirty.schema().len(),
        gen.errors.len()
    );

    for variant in [
        ModelVariant::DcFeats,
        ModelVariant::DcFactors,
        ModelVariant::DcFactorsPartitioned,
    ] {
        let outcome = HoloClean::new(gen.dirty.clone())
            .with_constraint_text(&gen.constraints_text)
            .expect("constraints parse")
            .with_config(HoloConfig::default().with_tau(0.5).with_variant(variant))
            .run()
            .expect("pipeline runs");
        let q = evaluate(&outcome.report, &outcome.dataset, &gen.clean);
        println!(
            "{:<40} P {:.3}  R {:.3}  F1 {:.3}  | {:>8} factors ({:>6} cliques) | compile {:>6.0} ms, repair {:>6.0} ms",
            variant.label(),
            q.precision,
            q.recall,
            q.f1,
            outcome.model.factors,
            outcome.model.cliques,
            outcome.timings.compile.as_secs_f64() * 1e3,
            outcome.timings.repair().as_secs_f64() * 1e3,
        );
    }
    println!("\nThe relaxed DC Feats model runs closed-form inference (independent");
    println!("variables, §5.2); the factor variants pay for Gibbs sampling and, without");
    println!("partitioning, for quadratic clique grounding (Algorithm 1 vs Algorithm 3).");
}
