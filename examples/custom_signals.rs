//! Extending HoloClean: custom error detectors and explicit noisy-cell
//! control over your own CSV data.
//!
//! ```text
//! cargo run --release --example custom_signals
//! ```
//!
//! Shows the extension points a downstream user actually touches:
//! loading a dataset from CSV, writing a custom [`Detector`], combining it
//! with the built-in violation/outlier/null detectors, and reading repairs
//! plus posteriors off the outcome.

use holoclean_repro::holo_dataset::{csv, CellRef, Dataset};
use holoclean_repro::holo_detect::{Detector, NoisyCells, NullDetector, OutlierDetector};
use holoclean_repro::holoclean::{HoloClean, HoloConfig};

/// A domain-specific detector: flags `Age` cells outside a plausible range.
struct AgeRangeDetector;

impl Detector for AgeRangeDetector {
    fn name(&self) -> &str {
        "age-range"
    }

    fn detect(&self, ds: &Dataset) -> NoisyCells {
        let mut noisy = NoisyCells::default();
        let Some(age) = ds.schema().attr_id("Age") else {
            return noisy;
        };
        for t in ds.tuples() {
            let value = ds.cell_str(t, age);
            let plausible = value.parse::<u32>().map(|a| (18..=110).contains(&a));
            if !matches!(plausible, Ok(true)) {
                noisy.insert(CellRef {
                    tuple: t,
                    attr: age,
                });
            }
        }
        noisy
    }
}

fn main() {
    // A small personnel table with three kinds of problems: an implausible
    // age (custom detector), a null department (null detector), and a
    // misspelled department (outlier + FD violation).
    let mut csv_text = String::from("Name,Department,Building,Age\n");
    for i in 0..12 {
        csv_text.push_str(&format!("Emp{i},Engineering,B1,{}\n", 30 + i));
    }
    for i in 12..20 {
        csv_text.push_str(&format!("Emp{i},Marketing,B2,{}\n", 28 + i));
    }
    csv_text.push_str("Emp20,Enginering,B1,35\n"); // typo department
    csv_text.push_str("Emp21,,B2,44\n"); // missing department
    csv_text.push_str("Emp22,Engineering,B1,230\n"); // implausible age

    let ds = csv::parse_dataset(&csv_text).expect("CSV parses");
    println!(
        "loaded {} tuples x {} attributes from CSV\n",
        ds.tuple_count(),
        ds.schema().len()
    );

    let outcome = HoloClean::new(ds)
        // Department determines building — a business rule as an FD.
        .with_constraint_text("FD: Department -> Building")
        .expect("constraints parse")
        .with_detector(AgeRangeDetector)
        .with_detector(NullDetector::for_attrs(vec!["Department"]))
        .with_detector(OutlierDetector::default())
        .with_config(HoloConfig::default().with_tau(0.3))
        .run()
        .expect("pipeline runs");

    println!("{} noisy cells detected; repairs:", outcome.noisy_cells);
    for r in &outcome.report.repairs {
        println!(
            "  tuple {} {:>10}: {:?} -> {:?} (p = {:.2})",
            r.cell.tuple.index(),
            outcome.dataset.schema().attr_name(r.cell.attr),
            r.old_value,
            r.new_value,
            r.probability
        );
    }

    println!("\nfull posterior of each undecided cell:");
    for p in &outcome.report.posteriors {
        let name = outcome.dataset.schema().attr_name(p.cell.attr);
        let cands: Vec<String> = p
            .candidates
            .iter()
            .map(|(sym, pr)| format!("{:?}={:.2}", outcome.dataset.value_str(*sym), pr))
            .collect();
        println!(
            "  tuple {} {:>10}: {}",
            p.cell.tuple.index(),
            name,
            cands.join("  ")
        );
    }
}
