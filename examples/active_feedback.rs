//! The §2.2/§7 feedback loop: ask a human about the lowest-confidence
//! repairs, pin their answers as labels, retrain incrementally.
//!
//! ```text
//! cargo run --release --example active_feedback
//! ```
//!
//! Uses the Hospital generator's ground truth as the "human" oracle and
//! shows precision/recall improving over three feedback rounds of ten
//! labels each.

use holoclean_repro::holo_datagen::{hospital, HospitalConfig};
use holoclean_repro::holoclean::feedback::{FeedbackSession, Label};
use holoclean_repro::holoclean::{evaluate, HoloClean, HoloConfig};

fn main() {
    let gen = hospital(HospitalConfig {
        rows: 600,
        ..HospitalConfig::default()
    });
    let config = HoloConfig::default();
    let (outcome, model, weights) = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .expect("constraints parse")
        .with_config(config.clone())
        .run_full()
        .expect("pipeline runs");
    let mut ds = outcome.dataset;
    let mut session = FeedbackSession::new(model, weights, config, &ds);

    let q = evaluate(&session.report(&ds), &gen.dirty, &gen.clean);
    println!(
        "round 0 (no feedback):  P {:.3}  R {:.3}  F1 {:.3}",
        q.precision, q.recall, q.f1
    );

    for round in 1..=3 {
        // Ask about the ten least-confident cells; answer from ground
        // truth (in production this is the human reviewer).
        let requests = session.requests(&ds, 10);
        if requests.is_empty() {
            println!("nothing left to verify");
            break;
        }
        let avg_confidence: f64 =
            requests.iter().map(|r| r.confidence).sum::<f64>() / requests.len() as f64;
        let labels: Vec<Label> = requests
            .iter()
            .map(|r| Label {
                cell: r.cell,
                value: gen.clean.cell_str(r.cell.tuple, r.cell.attr).to_string(),
            })
            .collect();
        session.apply_labels(&mut ds, &labels);
        let stats = session.retrain(&ds);
        let q = evaluate(&session.report(&ds), &gen.dirty, &gen.clean);
        println!(
            "round {round} (+10 labels, asked at avg confidence {avg_confidence:.2}): \
             P {:.3}  R {:.3}  F1 {:.3}  (log-likelihood {:.3})",
            q.precision, q.recall, q.f1, stats.final_log_likelihood
        );
    }
    println!(
        "\n{} cells verified in total; every verified cell is now evidence for\n\
         future runs (\"standard incremental learning and inference\", §2.2).",
        session.labelled_count()
    );
}
