//! Evaluate HoloClean against ground truth on the Hospital benchmark, and
//! compare with the Holistic baseline.
//!
//! ```text
//! cargo run --release --example hospital_eval
//! ```
//!
//! Generates the synthetic Hospital dataset (1 000 rows, 19 attributes,
//! 9 denial constraints, ~5% typo cells), runs both systems, and scores
//! them with the paper's precision/recall/F1 methodology — including the
//! Figure 6 confidence-bucket analysis for HoloClean.

use holoclean_repro::holo_baselines::{to_report, Holistic, RepairSystem};
use holoclean_repro::holo_constraints::parse_constraints;
use holoclean_repro::holo_datagen::{hospital, HospitalConfig};
use holoclean_repro::holoclean::report::{confidence_buckets, FIG6_EDGES};
use holoclean_repro::holoclean::{evaluate, HoloClean, HoloConfig};

fn main() {
    let gen = hospital(HospitalConfig::default());
    println!(
        "Hospital benchmark: {} rows x {} attrs, {} injected errors ({:.1}% of cells)\n",
        gen.dirty.tuple_count(),
        gen.dirty.schema().len(),
        gen.errors.len(),
        gen.error_rate() * 100.0
    );

    // ---- HoloClean ----
    let outcome = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .expect("constraints parse")
        .with_config(HoloConfig::default().with_tau(0.5))
        .run()
        .expect("pipeline runs");
    let holo_quality = evaluate(&outcome.report, &outcome.dataset, &gen.clean);
    println!(
        "HoloClean:  precision {:.3}  recall {:.3}  F1 {:.3}  ({} repairs in {:?})",
        holo_quality.precision,
        holo_quality.recall,
        holo_quality.f1,
        holo_quality.total_repairs,
        outcome.timings.total(),
    );

    // ---- Holistic ----
    let mut ds = gen.dirty.clone();
    let cons = parse_constraints(&gen.constraints_text, &mut ds).expect("constraints parse");
    let started = std::time::Instant::now();
    let repairs = Holistic::new(cons).repair(&ds);
    let elapsed = started.elapsed();
    let mut scratch = gen.dirty.clone();
    let report = to_report(&mut scratch, &repairs);
    let holistic_quality = evaluate(&report, &gen.dirty, &gen.clean);
    println!(
        "Holistic:   precision {:.3}  recall {:.3}  F1 {:.3}  ({} repairs in {elapsed:?})",
        holistic_quality.precision,
        holistic_quality.recall,
        holistic_quality.f1,
        holistic_quality.total_repairs,
    );

    // ---- confidence analysis (Figure 6) ----
    println!("\nHoloClean repairs by marginal-probability bucket:");
    for b in confidence_buckets(&outcome.report, &gen.clean, &FIG6_EDGES) {
        match b.error_rate() {
            Some(rate) => println!(
                "  [{:.1}, {:.1}): {:>4} repairs, error rate {:.2}",
                b.lo, b.hi, b.repairs, rate
            ),
            None => println!("  [{:.1}, {:.1}):    0 repairs", b.lo, b.hi),
        }
    }
    println!("\nLow-confidence buckets are the ones to route to human review");
    println!("(§2.2: the marginal carries rigorous semantics).");
}
