//! Quickstart: repair the Figure 1 food-inspection snippet.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the four-tuple dataset from the paper's running example, declares
//! the three functional dependencies of Figure 1(B), registers the address
//! dictionary of Figure 1(D) with the matching dependencies of Figure 1(C),
//! and lets HoloClean combine all signals — producing the repairs the paper
//! argues no single-signal system can produce (Figure 2, bottom).

use holoclean_repro::holo_dataset::{Dataset, Schema};
use holoclean_repro::holo_external::matching::AttrPair;
use holoclean_repro::holo_external::{ExtDict, MatchOp, MatchingDependency};
use holoclean_repro::holoclean::{HoloClean, HoloConfig, ModelVariant};

fn main() {
    // Figure 1(A): the input snippet, plus enough surrounding catalog rows
    // for the statistics to be meaningful (the real dataset has 339k rows;
    // signals need some mass to learn from).
    let mut ds = Dataset::new(Schema::new(vec![
        "DBAName", "AKAName", "Address", "City", "State", "Zip",
    ]));
    // t1-t4 of Figure 1(A).
    ds.push_row(&[
        "John Veliotis Sr.",
        "Johnnyo's",
        "3465 S Morgan ST",
        "Chicago",
        "IL",
        "60609",
    ]);
    ds.push_row(&[
        "John Veliotis Sr.",
        "Johnnyo's",
        "3465 S Morgan ST",
        "Chicago",
        "IL",
        "60608",
    ]);
    ds.push_row(&[
        "John Veliotis Sr.",
        "Johnnyo's",
        "3465 S Morgan ST",
        "Chicago",
        "IL",
        "60608",
    ]);
    ds.push_row(&[
        "Johnnyo's",
        "Johnnyo's",
        "3465 S Morgan ST",
        "Cicago",
        "IL",
        "60609",
    ]);
    // Context rows from the wider catalog: the real dataset spans years of
    // inspections, so each establishment repeats many times.
    for _ in 0..4 {
        ds.push_row(&[
            "John Veliotis Sr.",
            "Johnnyo's",
            "3465 S Morgan ST",
            "Chicago",
            "IL",
            "60608",
        ]);
        ds.push_row(&[
            "Zaribu Grill",
            "Zaribu",
            "1208 N Wells ST",
            "Chicago",
            "IL",
            "60610",
        ]);
        ds.push_row(&[
            "Erie Cafe",
            "Erie Cafe",
            "259 E Erie ST",
            "Chicago",
            "IL",
            "60611",
        ]);
    }

    // Figure 1(B): c1, c2, c3 as FD sugar (expands to denial constraints).
    let constraints = "\
        FD: DBAName -> Zip\n\
        FD: Zip -> City, State\n\
        FD: City, State, Address -> Zip\n";

    // Figure 1(D): the external address listing, with the matching
    // dependencies m1-m3 of Figure 1(C).
    let dictionary = ExtDict::from_csv(
        "chicago_addresses",
        "Ext_Address,Ext_City,Ext_State,Ext_Zip\n\
         3465 S Morgan ST,Chicago,IL,60608\n\
         1208 N Wells ST,Chicago,IL,60610\n\
         259 E Erie ST,Chicago,IL,60611\n\
         2806 W Cermak Rd,Chicago,IL,60623\n",
    )
    .expect("static dictionary parses");
    // m3's city comparison is the paper's ≈ (Example 3): the typo'd
    // "Cicago" must still reach the dictionary row.
    let m3 = MatchingDependency {
        name: "m3".into(),
        antecedent: vec![
            (
                AttrPair {
                    ds_attr: "City".into(),
                    dict_attr: "Ext_City".into(),
                },
                MatchOp::Sim(0.8),
            ),
            (
                AttrPair {
                    ds_attr: "State".into(),
                    dict_attr: "Ext_State".into(),
                },
                MatchOp::Eq,
            ),
            (
                AttrPair {
                    ds_attr: "Address".into(),
                    dict_attr: "Ext_Address".into(),
                },
                MatchOp::Eq,
            ),
        ],
        consequent: AttrPair {
            ds_attr: "Zip".into(),
            dict_attr: "Ext_Zip".into(),
        },
    };
    let deps = vec![
        MatchingDependency::equalities("m1", &[("Zip", "Ext_Zip")], ("City", "Ext_City")),
        MatchingDependency::equalities("m2", &[("Zip", "Ext_Zip")], ("State", "Ext_State")),
        m3,
    ];

    // On a snippet this small the relaxed (independent-variable) model can
    // over-repair: t1's wrong zip makes its *name* look inconsistent too,
    // because every counterfactual is evaluated against initial values.
    // The hybrid variant grounds the denial constraints as joint factors as
    // well, so Gibbs sampling can discover that fixing the zip alone
    // restores consistency (§6.3.1: "combining denial constraint factors
    // with denial constraint features improves the quality of repairs").
    let mut config = HoloConfig::default()
        .with_tau(0.3)
        .with_variant(ModelVariant::DcFeatsDcFactorsPartitioned);
    // A 16-row snippet offers little statistical mass; lean a bit more on
    // minimality than the large-dataset default does.
    config.minimality_weight = 0.8;
    let outcome = HoloClean::new(ds)
        .with_constraint_text(constraints)
        .expect("constraints parse")
        .with_dictionary(dictionary, deps)
        .with_config(config)
        .run()
        .expect("pipeline runs");

    println!("== HoloClean quickstart: the Figure 1 example ==\n");
    println!(
        "detected {} violations over {} noisy cells; compiled {} factors over {} variables\n",
        outcome.violations,
        outcome.noisy_cells,
        outcome.model.factors,
        outcome.model.query_vars + outcome.model.evidence_vars,
    );
    println!("proposed repairs (with marginal probabilities):");
    for r in &outcome.report.repairs {
        println!(
            "  tuple {} {:>8}: {:?} -> {:?}  (p = {:.2})",
            r.cell.tuple.index(),
            outcome.dataset.schema().attr_name(r.cell.attr),
            r.old_value,
            r.new_value,
            r.probability,
        );
    }
    println!("\nrepaired snippet:");
    for t in 0..4usize {
        let row: Vec<&str> = outcome
            .repaired
            .schema()
            .attrs()
            .map(|a| outcome.repaired.cell_str(t.into(), a))
            .collect();
        println!("  t{}: {}", t + 1, row.join(" | "));
    }
}
