//! Multi-source data fusion on the Flights dataset: where minimality
//! fails and source-reliability reasoning wins.
//!
//! ```text
//! cargo run --release --example flights_fusion
//! ```
//!
//! The Flights corpus has one row per (flight, source); the majority of
//! cells are dirty and sources copy each other's mistakes, so for many
//! flights the most frequent value is wrong. This example runs HoloClean
//! with source features (`HoloConfig::with_source`) and contrasts it with
//! the Holistic baseline, reproducing the paper's starkest Table 3 gap.

use holoclean_repro::holo_baselines::{to_report, Holistic, RepairSystem};
use holoclean_repro::holo_constraints::parse_constraints;
use holoclean_repro::holo_datagen::{flights, FlightsConfig};
use holoclean_repro::holoclean::{evaluate, HoloClean, HoloConfig};

fn main() {
    let gen = flights(FlightsConfig::default());
    println!(
        "Flights: {} rows ({} flights x {} sources), {} erroneous cells\n",
        gen.dirty.tuple_count(),
        72,
        33,
        gen.errors.len()
    );

    // HoloClean with lineage features: one learned reliability weight per
    // source, initialised from agreement statistics (SLiMFast-style EM).
    let outcome = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .expect("constraints parse")
        .with_config(
            HoloConfig::default()
                .with_tau(0.3)
                .with_source("Flight", "Source"),
        )
        .run()
        .expect("pipeline runs");
    let holo = evaluate(&outcome.report, &outcome.dataset, &gen.clean);
    println!(
        "HoloClean (with source features): P {:.3}  R {:.3}  F1 {:.3}",
        holo.precision, holo.recall, holo.f1
    );

    // The same model without source features: quantitative statistics
    // reduce to majority voting, which the dataset is designed to defeat.
    let outcome_plain = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .expect("constraints parse")
        .with_config(HoloConfig::default().with_tau(0.3))
        .run()
        .expect("pipeline runs");
    let plain = evaluate(&outcome_plain.report, &outcome_plain.dataset, &gen.clean);
    println!(
        "HoloClean (no source features):   P {:.3}  R {:.3}  F1 {:.3}",
        plain.precision, plain.recall, plain.f1
    );

    // Holistic: minimality follows the (often wrong) majority.
    let mut ds = gen.dirty.clone();
    let cons = parse_constraints(&gen.constraints_text, &mut ds).expect("constraints parse");
    let repairs = Holistic::new(cons).repair(&ds);
    let mut scratch = gen.dirty.clone();
    let report = to_report(&mut scratch, &repairs);
    let holistic = evaluate(&report, &gen.dirty, &gen.clean);
    println!(
        "Holistic (minimality):            P {:.3}  R {:.3}  F1 {:.3}",
        holistic.precision, holistic.recall, holistic.f1
    );

    println!(
        "\nsource features lift F1 by {:+.3} over the plain model and {:+.3} over Holistic.",
        holo.f1 - plain.f1,
        holo.f1 - holistic.f1
    );
}
