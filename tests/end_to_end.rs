//! Cross-crate integration tests: end-to-end repair quality on each
//! generated evaluation dataset, with the paper's Table 3 shape as the
//! assertion target (floors, not exact values — the generators are
//! synthetic and seeds vary by scale).

use holoclean_repro::holo_baselines::{to_report, Holistic, Katara, RepairSystem, Scare};
use holoclean_repro::holo_constraints::parse_constraints;
use holoclean_repro::holo_datagen::{
    flights, food, hospital, physicians, FlightsConfig, FoodConfig, HospitalConfig,
    PhysiciansConfig,
};
use holoclean_repro::holoclean::{evaluate, HoloClean, HoloConfig, RepairQuality};

fn run_holoclean(
    gen: &holoclean_repro::holo_datagen::GeneratedDataset,
    tau: f64,
    source: Option<(&str, &str)>,
) -> RepairQuality {
    let mut config = HoloConfig::default().with_tau(tau);
    if let Some((entity, src)) = source {
        config = config.with_source(entity, src);
    }
    let outcome = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .unwrap()
        .with_config(config)
        .run()
        .unwrap();
    evaluate(&outcome.report, &outcome.dataset, &gen.clean)
}

#[test]
fn hospital_quality_floor() {
    let gen = hospital(HospitalConfig {
        rows: 400,
        ..HospitalConfig::default()
    });
    let q = run_holoclean(&gen, 0.5, None);
    assert!(q.precision > 0.7, "precision {q:?}");
    assert!(q.recall > 0.45, "recall {q:?}");
    assert!(q.f1 > 0.6, "f1 {q:?}");
}

#[test]
fn flights_quality_floor_and_source_lift() {
    let gen = flights(FlightsConfig {
        flights: 40,
        sources: 25,
        ..FlightsConfig::default()
    });
    let with_sources = run_holoclean(&gen, 0.3, Some(("Flight", "Source")));
    assert!(with_sources.precision > 0.85, "{with_sources:?}");
    assert!(with_sources.recall > 0.7, "{with_sources:?}");
    // Source-reliability features must provide a real lift.
    let without = run_holoclean(&gen, 0.3, None);
    assert!(
        with_sources.f1 >= without.f1,
        "sources {with_sources:?} vs none {without:?}"
    );
}

#[test]
fn food_quality_floor() {
    let gen = food(FoodConfig {
        establishments: 250,
        ..FoodConfig::default()
    });
    let q = run_holoclean(&gen, 0.5, None);
    assert!(q.precision > 0.7, "{q:?}");
    assert!(q.f1 > 0.6, "{q:?}");
}

#[test]
fn physicians_quality_floor() {
    // The default bad-org rate: at higher rates several corrupted
    // organisations share a building block and the correct city loses its
    // within-block majority — legitimately unrecoverable at τ = 0.7.
    let gen = physicians(PhysiciansConfig {
        providers: 2_000,
        ..PhysiciansConfig::default()
    });
    let q = run_holoclean(&gen, 0.7, None);
    assert!(q.precision > 0.9, "{q:?}");
    assert!(q.recall > 0.8, "{q:?}");
}

#[test]
fn holoclean_beats_holistic_on_flights() {
    // The paper's starkest gap: minimality follows wrong majorities.
    let gen = flights(FlightsConfig {
        flights: 40,
        sources: 25,
        ..FlightsConfig::default()
    });
    let holo = run_holoclean(&gen, 0.3, Some(("Flight", "Source")));
    let mut ds = gen.dirty.clone();
    let cons = parse_constraints(&gen.constraints_text, &mut ds).unwrap();
    let repairs = Holistic::new(cons).repair(&ds);
    let mut scratch = gen.dirty.clone();
    let report = to_report(&mut scratch, &repairs);
    let holistic = evaluate(&report, &gen.dirty, &gen.clean);
    assert!(
        holo.f1 > holistic.f1 + 0.2,
        "HoloClean {holo:?} must clearly beat Holistic {holistic:?}"
    );
}

#[test]
fn katara_high_precision_low_recall_on_hospital() {
    let gen = hospital(HospitalConfig {
        rows: 400,
        ..HospitalConfig::default()
    });
    let dict = gen.dictionary.clone().expect("hospital has a dictionary");
    let alignment = vec![
        ("City".to_string(), "Ext_City".to_string()),
        ("State".to_string(), "Ext_State".to_string()),
        ("ZipCode".to_string(), "Ext_Zip".to_string()),
    ];
    let repairs = Katara::new(dict, alignment).repair(&gen.dirty);
    let mut scratch = gen.dirty.clone();
    let report = to_report(&mut scratch, &repairs);
    let q = evaluate(&report, &gen.dirty, &gen.clean);
    if q.total_repairs > 0 {
        assert!(q.precision > 0.9, "KATARA must stay precise: {q:?}");
    }
    assert!(q.recall < 0.5, "KATARA's coverage is limited: {q:?}");
}

#[test]
fn katara_zero_repairs_on_physicians_format_mismatch() {
    // Table 3 footnote: "KATARA performs no repairs due to format mismatch
    // for zip code" — 9-digit zips never match the 5-digit dictionary.
    let gen = physicians(PhysiciansConfig {
        providers: 1_000,
        bad_org_rate: 0.3,
        ..PhysiciansConfig::default()
    });
    let dict = gen.dictionary.clone().unwrap();
    let alignment = vec![
        ("City".to_string(), "Ext_City".to_string()),
        ("State".to_string(), "Ext_State".to_string()),
        ("Zip".to_string(), "Ext_Zip".to_string()),
    ];
    let repairs = Katara::new(dict, alignment).repair(&gen.dirty);
    assert!(repairs.is_empty(), "format mismatch must block all repairs");
}

#[test]
fn scare_near_zero_recall_on_flights() {
    // Flights has no duplicate-free likelihood signal for SCARE.
    let gen = flights(FlightsConfig {
        flights: 25,
        sources: 15,
        ..FlightsConfig::default()
    });
    let repairs = Scare::new().repair(&gen.dirty);
    let mut scratch = gen.dirty.clone();
    let report = to_report(&mut scratch, &repairs);
    let q = evaluate(&report, &gen.dirty, &gen.clean);
    assert!(q.recall < 0.3, "SCARE without duplicates: {q:?}");
}

#[test]
fn repaired_dataset_reduces_violations() {
    let gen = hospital(HospitalConfig {
        rows: 300,
        ..HospitalConfig::default()
    });
    let outcome = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .unwrap()
        .run()
        .unwrap();
    let mut before_ds = gen.dirty.clone();
    let cons = parse_constraints(&gen.constraints_text, &mut before_ds).unwrap();
    let before = holoclean_repro::holo_constraints::find_violations(&before_ds, &cons).len();
    let mut after_ds = outcome.repaired.clone();
    let cons_after = parse_constraints(&gen.constraints_text, &mut after_ds).unwrap();
    let after = holoclean_repro::holo_constraints::find_violations(&after_ds, &cons_after).len();
    assert!(
        after < before / 2,
        "repairs must resolve most violations: {before} -> {after}"
    );
}
