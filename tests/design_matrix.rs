//! Golden tests for the CSR design-matrix refactor: on a real compiled
//! hospital model, the CSR scoring path must be bit-for-bit the old
//! nested-adjacency path, and minibatch-parallel SGD must produce
//! identical weights at every thread count.

use holoclean_repro::holo_datagen::{hospital, HospitalConfig};
use holoclean_repro::holo_factor::learn::train_with_threads;
use holoclean_repro::holoclean::pipeline::{
    CompileStage, DetectStage, PipelineContext, Stage, StageData,
};
use holoclean_repro::holoclean::HoloConfig;

/// Detect + Compile over a generated hospital dataset, returning the
/// filled blackboard and the shared context.
fn compile_hospital(threads: usize) -> (PipelineContext, StageData) {
    let gen = hospital(HospitalConfig {
        rows: 300,
        seed: 11,
        ..HospitalConfig::default()
    });
    let mut ds = gen.dirty.clone();
    let constraints =
        holoclean_repro::holo_constraints::parse_constraints(&gen.constraints_text, &mut ds)
            .expect("generated constraints parse");
    let cx = PipelineContext::new(ds, constraints, HoloConfig::default().with_threads(threads));
    let mut data = StageData::default();
    DetectStage.run(&cx, &mut data).unwrap();
    CompileStage.run(&cx, &mut data).unwrap();
    (cx, data)
}

/// The tentpole equivalence: every variable's CSR-backed `unary_scores`
/// equals the nested-adjacency reference path bit-for-bit, under both the
/// prior weights and trained (non-trivial) weights.
#[test]
fn csr_unary_scores_match_adjacency_on_hospital() {
    let (cx, data) = compile_hospital(1);
    let model = data.model.as_ref().unwrap();
    let mut trained = model.weights.clone();
    train_with_threads(&model.graph, &mut trained, &cx.config.learn, 1);
    assert!(trained.learnable_norm() > 0.0, "training moved the weights");
    let design = model.graph.design();
    assert!(design.nnz() > 0, "hospital model has unary features");
    assert_eq!(design.var_count(), model.graph.var_count());
    for weights in [&model.weights, &trained] {
        for v in model.graph.var_ids() {
            let csr = model.graph.unary_scores(v, weights);
            let adjacency = model.graph.unary_scores_adjacency(v, weights);
            assert_eq!(csr.len(), adjacency.len(), "var {v:?}");
            for (k, (a, b)) in csr.iter().zip(&adjacency).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "var {v:?} candidate {k}: csr {a} vs adjacency {b}"
                );
            }
        }
    }
}

/// The learning determinism contract on a real model: `threads ∈ {1, 2, 4}`
/// produce identical `Weights` (and identical diagnostics).
#[test]
fn learn_thread_counts_produce_identical_weights_on_hospital() {
    let (cx, data) = compile_hospital(1);
    let model = data.model.as_ref().unwrap();
    let mut reference = model.weights.clone();
    let ref_stats = train_with_threads(&model.graph, &mut reference, &cx.config.learn, 1);
    assert!(ref_stats.examples > 0, "hospital compiles evidence");
    assert!(ref_stats.minibatches > 0);
    for threads in [2, 4] {
        let mut weights = model.weights.clone();
        let stats = train_with_threads(&model.graph, &mut weights, &cx.config.learn, threads);
        assert_eq!(weights, reference, "threads = {threads}");
        assert_eq!(stats.minibatches, ref_stats.minibatches);
        assert_eq!(
            stats.grad_norm.to_bits(),
            ref_stats.grad_norm.to_bits(),
            "threads = {threads}"
        );
        assert_eq!(
            stats.final_log_likelihood.to_bits(),
            ref_stats.final_log_likelihood.to_bits(),
            "threads = {threads}"
        );
    }
}

/// Hospital-scale check of the incremental path: pinning evidence (the
/// feedback mutation) on a real compiled model patches the cached matrix
/// in place — no further full build — and the patched matrix is
/// bit-for-bit a fresh compile of the mutated adjacency.
#[test]
fn pinning_patches_hospital_design_in_place() {
    let (cx, mut data) = compile_hospital(1);
    let model = data.model.as_mut().unwrap();
    let before = model.graph.design_stats();
    assert_eq!(before.full_builds, 1, "compile forced the one build");
    let mut ds = cx.ds.clone();
    let pins: Vec<_> = model
        .query_vars
        .iter()
        .copied()
        .step_by(3)
        .take(6)
        .enumerate()
        .map(|(i, v)| (v, ds.intern(&format!("steward-says-{i}"))))
        .collect();
    assert_eq!(pins.len(), 6);
    for &(v, sym) in &pins {
        model.graph.pin_evidence(v, sym);
    }
    let stats = model.graph.design_stats().since(&before);
    assert_eq!(stats.full_builds, 0);
    assert_eq!(stats.vars_patched, 6);
    assert_eq!(stats.rows_patched, 6, "one appended row per novel pin");
    assert_eq!(model.graph.design(), &model.graph.compile_design());
    // The reference adjacency path agrees with the patched CSR path.
    let weights = model.weights.clone();
    for &(v, _) in &pins {
        assert_eq!(
            model.graph.unary_scores(v, &weights),
            model.graph.unary_scores_adjacency(v, &weights)
        );
    }
}

/// The whole compile stage is thread-count invariant too — including the
/// parallel DC grounding and the design-matrix shape it feeds.
#[test]
fn compile_thread_counts_produce_identical_design() {
    let reference = compile_hospital(1).1;
    let ref_model = reference.model.as_ref().unwrap();
    for threads in [2, 4] {
        let data = compile_hospital(threads).1;
        let model = data.model.as_ref().unwrap();
        assert_eq!(
            model.query_cells, ref_model.query_cells,
            "threads = {threads}"
        );
        assert_eq!(
            model.graph.design(),
            ref_model.graph.design(),
            "threads = {threads}"
        );
    }
}
