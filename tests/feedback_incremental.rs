//! The incremental-recompilation contract of the feedback loop:
//!
//! 1. any sequence of post-compile graph mutations (in-domain pins,
//!    out-of-domain pins, late features) leaves the patched design matrix
//!    **bit-for-bit equal** to a from-scratch compile of the mutated
//!    adjacency, with zero full rebuilds;
//! 2. the whole feedback loop (requests → apply_labels → retrain →
//!    report) is bit-for-bit identical across thread counts.

use holoclean_repro::holo_datagen::{hospital, HospitalConfig};
use holoclean_repro::holo_dataset::Sym;
use holoclean_repro::holo_factor::{
    CliqueFactor, CmpOp, FactorGraph, FactorOperand, FactorPredicate, Variable, WeightId,
};
use holoclean_repro::holoclean::feedback::{FeedbackSession, Label};
use holoclean_repro::holoclean::{HoloClean, HoloConfig};
use proptest::prelude::*;

/// One post-compile mutation of a factor graph, drawn from the moves the
/// feedback loop and the streaming engine actually make: pins (in- and
/// out-of-domain), late features, appended variables (a streamed batch
/// grounding new cells), and late cliques (coupling spanning the
/// append/pin history) — the "append batch → pin label → late clique"
/// interleavings whose patched state must stay bit-for-bit equal to a
/// fresh compile across every boundary.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Pin variable `var % n` to candidate `k % arity` (in-domain).
    PinInDomain { var: usize, k: usize },
    /// Pin variable `var % n` to a fresh symbol (appends a candidate row).
    PinNovel { var: usize },
    /// Append a feature to candidate `k % arity` of variable `var % n`.
    AddFeature {
        var: usize,
        k: usize,
        weight: usize,
        value_milli: i32,
    },
    /// Append a fresh variable of the given arity, pre-loaded with
    /// `features` features — a streamed batch's new cell.
    AppendVar { arity: usize, features: usize },
    /// Add a clique over variables `a % n` and `b % n` — late coupling
    /// that must merge components in place.
    LateClique { a: usize, b: usize },
}

fn mutation() -> impl Strategy<Value = Mutation> {
    (0usize..32, 0usize..10, 0usize..6, -2000i32..2000).prop_map(|(var, k, weight, value_milli)| {
        match k % 5 {
            0 => Mutation::PinInDomain { var, k },
            1 => Mutation::PinNovel { var },
            2 => Mutation::AppendVar {
                arity: 2 + var % 3,
                features: weight % 4,
            },
            3 => Mutation::LateClique {
                a: var,
                b: var / 2 + k,
            },
            _ => Mutation::AddFeature {
                var,
                k,
                weight,
                value_milli,
            },
        }
    })
}

/// A small random graph: 2–5 variables of arity 2–4 with a few features.
fn graph_shape() -> impl Strategy<Value = (Vec<usize>, Vec<(usize, usize, usize)>)> {
    (2usize..=5).prop_flat_map(|n| {
        (
            proptest::collection::vec(2usize..=4, n),
            proptest::collection::vec((0usize..n, 0usize..4, 0usize..6), 0..12),
        )
    })
}

fn build_graph(arities: &[usize], features: &[(usize, usize, usize)]) -> FactorGraph {
    let mut g = FactorGraph::new();
    for (i, &arity) in arities.iter().enumerate() {
        // Distinct symbol ranges per variable; Sym(0) is reserved.
        let base = 1 + (i * 16) as u32;
        let domain: Vec<Sym> = (0..arity as u32).map(|k| Sym(base + k)).collect();
        g.add_variable(Variable::query(domain, Some(0)));
    }
    for &(v, k, w) in features {
        let var = holoclean_repro::holo_factor::VarId(v as u32);
        let k = k % arities[v];
        g.add_feature(var, k, WeightId(w as u32), 0.25 + w as f64);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mutation sequences keep the patched matrix bit-for-bit equal
    /// to a fresh compile, without ever triggering a full rebuild.
    #[test]
    fn random_pin_sequences_patch_equals_compile(
        case in (graph_shape(), proptest::collection::vec(mutation(), 1..20)),
    ) {
        let ((arities, features), mutations) = case;
        let mut g = build_graph(&arities, &features);
        let _ = g.design(); // the one full build
        let _ = g.components(); // likewise for the component index
        prop_assert_eq!(g.design_stats().full_builds, 1);
        prop_assert_eq!(g.component_stats().full_builds, 1);
        let mut n_vars = arities.len();
        let mut novel = 10_000u32; // far above any domain symbol
        for m in mutations {
            match m {
                Mutation::PinInDomain { var, k } => {
                    let v = holoclean_repro::holo_factor::VarId((var % n_vars) as u32);
                    let value = g.var(v).domain[k % g.var(v).arity()];
                    g.pin_evidence(v, value);
                }
                Mutation::PinNovel { var } => {
                    let v = holoclean_repro::holo_factor::VarId((var % n_vars) as u32);
                    novel += 1;
                    g.pin_evidence(v, Sym(novel));
                }
                Mutation::AddFeature { var, k, weight, value_milli } => {
                    let v = holoclean_repro::holo_factor::VarId((var % n_vars) as u32);
                    let k = k % g.var(v).arity();
                    g.add_feature(v, k, WeightId(weight as u32), value_milli as f64 / 1000.0);
                }
                Mutation::AppendVar { arity, features } => {
                    // A streamed batch grounding a new cell: the variable
                    // arrives with its features pre-materialised, splicing
                    // into the live matrix in one append.
                    let domain: Vec<Sym> = (0..arity as u32)
                        .map(|k| {
                            novel += 1;
                            Sym(novel + k)
                        })
                        .collect();
                    novel += arity as u32;
                    let rows: Vec<Vec<(WeightId, f64)>> = (0..arity)
                        .map(|k| {
                            (0..features)
                                .map(|f| (WeightId(((k + f) % 6) as u32), 0.5 + f as f64))
                                .collect()
                        })
                        .collect();
                    g.add_variable_with_features(Variable::query(domain, Some(0)), rows);
                    n_vars += 1;
                }
                Mutation::LateClique { a, b } => {
                    let va = holoclean_repro::holo_factor::VarId((a % n_vars) as u32);
                    let vb = holoclean_repro::holo_factor::VarId((b % n_vars) as u32);
                    let (vars, predicates) = if va == vb {
                        (
                            vec![va],
                            vec![FactorPredicate {
                                lhs: FactorOperand::Var(0),
                                op: CmpOp::Eq,
                                rhs: FactorOperand::Const(g.var(va).domain[0]),
                            }],
                        )
                    } else {
                        (
                            vec![va, vb],
                            vec![FactorPredicate {
                                lhs: FactorOperand::Var(0),
                                op: CmpOp::Eq,
                                rhs: FactorOperand::Var(1),
                            }],
                        )
                    };
                    g.add_clique(CliqueFactor {
                        vars,
                        weight: WeightId(0),
                        predicates,
                    });
                }
            }
            // After *every* mutation: the patched matrix is exactly what a
            // from-scratch compile of the current adjacency produces, and
            // the patched component index equals a fresh union-find build.
            prop_assert_eq!(g.design(), &g.compile_design());
            prop_assert_eq!(g.components(), &g.compile_components());
        }
        prop_assert_eq!(g.design_stats().full_builds, 1, "patches only, no rebuild");
        prop_assert_eq!(g.component_stats().full_builds, 1, "index patches only");
    }

    /// Streaming proptest: random row streams under random batch splits
    /// keep the session's patched design matrix and component index
    /// bit-for-bit equal to fresh compiles at every batch boundary, and
    /// the final report byte-identical to the one-shot pipeline.
    #[test]
    fn random_streams_stay_patch_equal_and_batch_equivalent(
        rows in proptest::collection::vec((0u8..4, 0u8..5, 0u8..2), 4..40),
        batches in 1usize..5,
        threads in 1usize..3,
    ) {
        use holoclean_repro::holo_dataset::{Dataset, Schema};
        use holoclean_repro::holoclean::stream::StreamSession;

        let rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(z, c, s)| vec![format!("z{z}"), format!("c{c}"), format!("s{s}")])
            .collect();
        let schema = Schema::new(vec!["Zip", "City", "State"]);
        let constraints = "FD: Zip -> City\nFD: City, State -> Zip";
        let mut session = StreamSession::new(
            schema.clone(),
            constraints,
            HoloConfig::default().with_threads(threads),
        )
        .unwrap();
        for chunk in rows.chunks(rows.len().div_ceil(batches)) {
            session.push_batch(chunk).unwrap();
            prop_assert!(
                session.verify_patch_equivalence(),
                "patched design/components must equal fresh compiles at every batch boundary"
            );
        }
        let report = session.report();
        prop_assert_eq!(session.design_stats().full_builds, 1);
        prop_assert_eq!(session.component_stats().full_builds, 1);

        let mut ds = Dataset::new(schema);
        for row in &rows {
            ds.push_row(row);
        }
        let reference = HoloClean::new(ds)
            .with_constraint_text(constraints)
            .unwrap()
            .with_config(HoloConfig::default().with_threads(1))
            .run()
            .unwrap()
            .report;
        prop_assert_eq!(report, reference);
    }
}

/// Runs a two-round feedback session over a generated hospital dataset at
/// the given thread count, labelling low-confidence cells with their clean
/// values plus one novel (out-of-domain) value per round.
fn feedback_loop(
    threads: usize,
) -> (
    Vec<(String, u64)>,
    FeedbackSession,
    holoclean_repro::holo_dataset::Dataset,
) {
    let gen = hospital(HospitalConfig {
        rows: 120,
        seed: 23,
        ..HospitalConfig::default()
    });
    let (outcome, model, weights) = HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .unwrap()
        .with_config(HoloConfig::default().with_threads(threads))
        .run_full()
        .unwrap();
    let mut ds = outcome.dataset;
    let mut session = FeedbackSession::new(
        model,
        weights,
        HoloConfig::default().with_threads(threads),
        &ds,
    );
    let mut trace: Vec<(String, u64)> = Vec::new();
    for round in 0..2 {
        let requests = session.requests(&ds, 4);
        for (i, r) in requests.iter().enumerate() {
            trace.push((
                format!("round {round} request {i}: {:?} -> {}", r.cell, r.proposed),
                r.confidence.to_bits(),
            ));
        }
        let labels: Vec<Label> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| Label {
                cell: r.cell,
                value: if i == 0 {
                    format!("audited-{round}")
                } else {
                    gen.clean.cell_str(r.cell.tuple, r.cell.attr).to_string()
                },
            })
            .collect();
        session.apply_labels(&mut ds, &labels);
        session.retrain(&ds);
        for repair in &session.report(&ds).repairs {
            trace.push((
                format!(
                    "round {round} repair {:?} -> {}",
                    repair.cell, repair.new_value
                ),
                repair.probability.to_bits(),
            ));
        }
    }
    (trace, session, ds)
}

/// The full loop — requests, labels, retrain, report — is bit-for-bit
/// identical at every thread count, and never rebuilds the design matrix.
#[test]
fn feedback_loop_is_thread_count_invariant() {
    let (reference, ref_session, ref_ds) = feedback_loop(1);
    assert!(!reference.is_empty(), "the loop produced requests/repairs");
    let ref_report = ref_session.report(&ref_ds);
    for threads in [2, 4] {
        let (trace, session, ds) = feedback_loop(threads);
        assert_eq!(trace, reference, "threads = {threads}");
        assert_eq!(session.report(&ds), ref_report, "threads = {threads}");
        assert_eq!(
            session.design_stats(),
            ref_session.design_stats(),
            "threads = {threads}"
        );
    }
    // And the patched matrix still equals a fresh compile after the whole
    // session (zero full rebuilds along the way).
    let stats = ref_session.design_stats();
    assert_eq!(stats.full_builds, 0);
    assert!(stats.rows_patched >= 2, "one novel label per round");
    // The component index was never rebuilt either: pins patch inside
    // their components, and partitioned re-inference reads the cache.
    assert_eq!(ref_session.component_stats().full_builds, 0);
    assert!(ref_session.partition_stats().components > 1);
}
