//! The determinism contract of partitioned hybrid inference, end to end:
//!
//! 1. hospital marginals (posteriors and repairs) are **bit-for-bit**
//!    identical across thread counts, for the clique-free relaxed model
//!    and for a clique variant whose components actually sample;
//! 2. `exact_component_limit` is inert for clique-free (closed-form)
//!    components — the relaxed model's output is identical at limit 0 and
//!    at the default — while for clique-coupled models every limit value
//!    is itself deterministic;
//! 3. `PartitionStats` reports the decomposition: more than one component
//!    on hospital, with the closed-form/exact/Gibbs routing split
//!    accounting for every query variable.

use holoclean_repro::holo_datagen::{hospital, HospitalConfig};
use holoclean_repro::holoclean::{HoloClean, HoloConfig, ModelVariant, RepairOutcome};

fn run(
    gen: &holoclean_repro::holo_datagen::GeneratedDataset,
    variant: ModelVariant,
    threads: usize,
    exact_component_limit: u64,
) -> RepairOutcome {
    HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .unwrap()
        .with_config(
            HoloConfig::default()
                .with_variant(variant)
                .with_threads(threads)
                .with_exact_component_limit(exact_component_limit),
        )
        .run()
        .unwrap()
}

fn small_hospital() -> holoclean_repro::holo_datagen::GeneratedDataset {
    hospital(HospitalConfig {
        rows: 150,
        seed: 11,
        ..HospitalConfig::default()
    })
}

/// The relaxed (clique-free) model: every component is closed-form, so
/// the partition seam must change nothing — bit-identical output across
/// thread counts *and* across exact-limit values, with the partition
/// stats showing many singleton components.
#[test]
fn relaxed_model_identical_across_threads_and_limits() {
    let gen = small_hospital();
    let reference = run(&gen, ModelVariant::DcFeats, 1, 4096);
    let p = reference.timings.partition;
    assert!(p.components > 1, "hospital decomposes: {p:?}");
    assert_eq!(p.components, p.closed_form_components, "{p:?}");
    assert_eq!(p.gibbs_vars, 0, "{p:?}");
    assert_eq!(p.exact_vars, 0, "{p:?}");
    assert_eq!(
        p.closed_form_vars, reference.model.query_vars as u64,
        "every query var routed: {p:?}"
    );
    assert_eq!(reference.timings.components.full_builds, 1);
    for threads in [2, 4] {
        let out = run(&gen, ModelVariant::DcFeats, threads, 4096);
        assert_eq!(out.report, reference.report, "threads = {threads}");
        assert_eq!(out.timings.partition, p, "threads = {threads}");
    }
    // The exact limit only gates clique-coupled enumeration; closed-form
    // components ignore it entirely.
    for limit in [0, 1, u64::MAX] {
        let out = run(&gen, ModelVariant::DcFeats, 1, limit);
        assert_eq!(
            out.report, reference.report,
            "exact_component_limit = {limit}"
        );
    }
}

/// A clique variant: components are coupled, some sample, and the whole
/// end-to-end output (posteriors included) is still bit-identical at
/// every thread count.
#[test]
fn clique_model_marginals_bit_identical_across_threads() {
    let gen = small_hospital();
    let reference = run(&gen, ModelVariant::DcFeatsDcFactors, 1, 4096);
    let p = reference.timings.partition;
    assert!(p.components > 1, "hospital decomposes: {p:?}");
    assert!(
        p.gibbs_vars + p.exact_vars > 0,
        "cliques must couple some components: {p:?}"
    );
    assert_eq!(
        p.closed_form_vars + p.exact_vars + p.gibbs_vars,
        reference.model.query_vars as u64,
        "every query var routed exactly once: {p:?}"
    );
    for threads in [2, 4] {
        let out = run(&gen, ModelVariant::DcFeatsDcFactors, threads, 4096);
        assert_eq!(
            out.report, reference.report,
            "posteriors and repairs at threads = {threads}"
        );
        assert_eq!(out.timings.partition, p, "threads = {threads}");
    }
}

/// Exact enumeration and Gibbs are each deterministic per limit value:
/// rerunning any configuration reproduces itself bit-for-bit (the limit
/// is a model knob, never a source of nondeterminism).
#[test]
fn every_limit_value_is_self_deterministic() {
    let gen = small_hospital();
    for limit in [0, 4096] {
        let a = run(&gen, ModelVariant::DcFeatsDcFactors, 1, limit);
        let b = run(&gen, ModelVariant::DcFeatsDcFactors, 4, limit);
        assert_eq!(a.report, b.report, "limit = {limit}");
    }
}

/// Raising the limit moves coupled components from the sampler to exact
/// enumeration — observable in the routing split, monotonically.
#[test]
fn raising_the_limit_shifts_components_to_exact() {
    let gen = small_hospital();
    let sampled = run(&gen, ModelVariant::DcFeatsDcFactors, 1, 0);
    let hybrid = run(&gen, ModelVariant::DcFeatsDcFactors, 1, 4096);
    let ps = sampled.timings.partition;
    let ph = hybrid.timings.partition;
    assert_eq!(ps.exact_components, 0, "limit 0 disables enumeration");
    assert!(ps.gibbs_components > 0, "{ps:?}");
    assert!(ph.exact_components + ph.gibbs_components == ps.gibbs_components);
    assert!(
        ph.exact_components > 0,
        "small coupled components exist: {ph:?}"
    );
    // The decomposition itself is identical — only the routing moves.
    assert_eq!(ps.components, ph.components);
    assert_eq!(ps.size_hist, ph.size_hist);
}
