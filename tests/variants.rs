//! Integration tests over the five model variants (the Figure 5 axis) and
//! the confidence calibration of Figure 6.

use holoclean_repro::holo_datagen::{food, hospital, FoodConfig, HospitalConfig};
use holoclean_repro::holoclean::report::{confidence_buckets, FIG6_EDGES};
use holoclean_repro::holoclean::{evaluate, HoloClean, HoloConfig, ModelVariant};

fn outcome_for(
    gen: &holoclean_repro::holo_datagen::GeneratedDataset,
    variant: ModelVariant,
    tau: f64,
) -> holoclean_repro::holoclean::RepairOutcome {
    HoloClean::new(gen.dirty.clone())
        .with_constraint_text(&gen.constraints_text)
        .unwrap()
        .with_config(HoloConfig::default().with_tau(tau).with_variant(variant))
        .run()
        .unwrap()
}

#[test]
fn every_variant_produces_usable_repairs() {
    let gen = hospital(HospitalConfig {
        rows: 250,
        ..HospitalConfig::default()
    });
    for variant in ModelVariant::all() {
        let outcome = outcome_for(&gen, variant, 0.5);
        let q = evaluate(&outcome.report, &outcome.dataset, &gen.clean);
        assert!(q.f1 > 0.4, "variant {variant:?} collapsed: {q:?}");
        if variant.uses_dc_factors() {
            assert!(outcome.model.cliques > 0, "{variant:?} must ground cliques");
        } else {
            assert_eq!(outcome.model.cliques, 0);
        }
    }
}

#[test]
fn partitioning_never_grows_the_graph() {
    let gen = food(FoodConfig {
        establishments: 120,
        ..FoodConfig::default()
    });
    let unpart = outcome_for(&gen, ModelVariant::DcFactors, 0.5);
    let part = outcome_for(&gen, ModelVariant::DcFactorsPartitioned, 0.5);
    assert!(part.model.cliques <= unpart.model.cliques);
    assert!(part.model.factors <= unpart.model.factors);
    // Quality: partitioning drops cliques against *clean* tuples (they are
    // in no conflict component), which for the pure-factor model removes
    // the deterrent against damaging repairs — §5.1.2 reports F1 drops up
    // to 6% on the paper's data; synthetic small-scale instances swing
    // harder, so only guard against collapse here.
    let q_unpart = evaluate(&unpart.report, &unpart.dataset, &gen.clean);
    let q_part = evaluate(&part.report, &part.dataset, &gen.clean);
    assert!(
        q_part.f1 > q_unpart.f1 - 0.35,
        "partitioned {q_part:?} vs unpartitioned {q_unpart:?}"
    );
    // The hybrid variants keep the relaxed features as unary deterrents, so
    // partitioning there must stay within a few points.
    let hybrid = outcome_for(&gen, ModelVariant::DcFeatsDcFactors, 0.5);
    let hybrid_part = outcome_for(&gen, ModelVariant::DcFeatsDcFactorsPartitioned, 0.5);
    let q_hybrid = evaluate(&hybrid.report, &hybrid.dataset, &gen.clean);
    let q_hybrid_part = evaluate(&hybrid_part.report, &hybrid_part.dataset, &gen.clean);
    assert!(
        q_hybrid_part.f1 > q_hybrid.f1 - 0.15,
        "hybrid partitioned {q_hybrid_part:?} vs hybrid {q_hybrid:?}"
    );
}

#[test]
fn raising_tau_shrinks_the_candidate_space() {
    let gen = hospital(HospitalConfig {
        rows: 300,
        ..HospitalConfig::default()
    });
    let mut previous = usize::MAX;
    for tau in [0.3, 0.5, 0.7, 0.9] {
        let outcome = outcome_for(&gen, ModelVariant::DcFeats, tau);
        assert!(
            outcome.model.total_candidates <= previous,
            "tau {tau}: candidates grew"
        );
        previous = outcome.model.total_candidates;
    }
}

#[test]
fn confidence_endpoints_are_calibrated() {
    // Figure 6's shape: high-confidence repairs are much more reliable
    // than low-confidence ones.
    let gen = hospital(HospitalConfig {
        rows: 500,
        ..HospitalConfig::default()
    });
    let outcome = outcome_for(&gen, ModelVariant::DcFeats, 0.5);
    let buckets = confidence_buckets(&outcome.report, &gen.clean, &FIG6_EDGES);
    let top = buckets.last().unwrap();
    assert!(top.repairs > 0, "the top bucket must hold repairs");
    let top_rate = top.error_rate().unwrap();
    assert!(top_rate < 0.25, "top-bucket error rate {top_rate}");
    // Any populated low bucket must be no better than the top bucket by a
    // wide margin in the wrong direction.
    if let Some(low) = buckets.iter().find(|b| b.repairs >= 5) {
        assert!(
            low.error_rate().unwrap() >= top_rate - 0.05,
            "low bucket cannot be cleaner than the top bucket"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let gen = hospital(HospitalConfig {
        rows: 200,
        ..HospitalConfig::default()
    });
    let a = outcome_for(&gen, ModelVariant::DcFeats, 0.5);
    let b = outcome_for(&gen, ModelVariant::DcFeats, 0.5);
    assert_eq!(a.report.repairs, b.report.repairs);
    let c = outcome_for(&gen, ModelVariant::DcFeatsDcFactorsPartitioned, 0.5);
    let d = outcome_for(&gen, ModelVariant::DcFeatsDcFactorsPartitioned, 0.5);
    assert_eq!(c.report.repairs, d.report.repairs, "Gibbs path is seeded");
}
