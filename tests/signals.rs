//! Integration tests for the individual repair signals: external
//! dictionaries, matching dependencies, source reliability, and the
//! detector ensemble.

use holoclean_repro::holo_constraints::parse_constraints;
use holoclean_repro::holo_dataset::{CellRef, Dataset, FxHashSet, Schema};
use holoclean_repro::holo_detect::{Detector, NullDetector, OutlierDetector, ViolationDetector};
use holoclean_repro::holo_external::{ExtDict, MatchingDependency};
use holoclean_repro::holoclean::{HoloClean, HoloConfig};

#[test]
fn dictionary_repairs_without_duplicates() {
    // No co-occurrence mass at all: the dictionary is the only signal.
    let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
    ds.push_row(&["60608", "Cicago"]);
    ds.push_row(&["60201", "Evanstn"]);
    let dict =
        ExtDict::from_csv("addr", "Ext_Zip,Ext_City\n60608,Chicago\n60201,Evanston\n").unwrap();
    let md = MatchingDependency::equalities("m1", &[("Zip", "Ext_Zip")], ("City", "Ext_City"));
    let city = ds.schema().attr_id("City").unwrap();
    let mut noisy = FxHashSet::default();
    noisy.insert(CellRef {
        tuple: 0usize.into(),
        attr: city,
    });
    noisy.insert(CellRef {
        tuple: 1usize.into(),
        attr: city,
    });
    let outcome = HoloClean::new(ds)
        .with_dictionary(dict, vec![md])
        .with_noisy_cells(noisy)
        .run()
        .unwrap();
    let fixed: Vec<&str> = outcome
        .report
        .repairs
        .iter()
        .map(|r| r.new_value.as_str())
        .collect();
    assert!(fixed.contains(&"Chicago"));
    assert!(fixed.contains(&"Evanston"));
}

#[test]
fn outlier_detector_feeds_the_pipeline() {
    // No constraints at all: detection comes from the statistical outlier
    // detector, repair from co-occurrence statistics.
    let mut ds = Dataset::new(Schema::new(vec!["City", "State"]));
    for _ in 0..40 {
        ds.push_row(&["Chicago", "IL"]);
    }
    for _ in 0..40 {
        ds.push_row(&["Madison", "WI"]);
    }
    ds.push_row(&["Chicagoo", "IL"]);
    let outcome = HoloClean::new(ds)
        .with_detector(OutlierDetector::default())
        .with_config(HoloConfig::default().with_tau(0.3))
        .run()
        .unwrap();
    assert_eq!(outcome.report.repairs.len(), 1);
    assert_eq!(outcome.report.repairs[0].new_value, "Chicago");
}

#[test]
fn detectors_compose() {
    let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
    for _ in 0..10 {
        ds.push_row(&["60608", "Chicago"]);
    }
    ds.push_row(&["60608", "Cicago"]); // violation
    ds.push_row(&["60608", ""]); // null
    let cons = parse_constraints("FD: Zip -> City", &mut ds).unwrap();
    let violation_cells = ViolationDetector::new(cons).detect(&ds);
    let null_cells = NullDetector::all().detect(&ds);
    assert!(!violation_cells.is_empty());
    assert_eq!(null_cells.len(), 1);

    let outcome = HoloClean::new(ds)
        .with_constraint_text("FD: Zip -> City")
        .unwrap()
        .with_detector(NullDetector::all())
        .with_config(HoloConfig::default().with_tau(0.3))
        .run()
        .unwrap();
    // Both the typo and the missing value get imputed to "Chicago".
    let repaired: Vec<(&str, &str)> = outcome
        .report
        .repairs
        .iter()
        .map(|r| (r.old_value.as_str(), r.new_value.as_str()))
        .collect();
    assert!(repaired.contains(&("Cicago", "Chicago")), "{repaired:?}");
    assert!(repaired.contains(&("", "Chicago")), "{repaired:?}");
}

#[test]
fn source_reliability_beats_wrong_majorities() {
    // 3 reliable sources, 6 unreliable ones. On most flights the bad
    // sources err *diversely* (3 of 6, rotating), so the reliability
    // estimator has signal; on every fourth flight 5 of 6 share a wrong
    // value — a 5-vs-4 wrong majority that plain voting (and minimality)
    // follows, but the learned source weights must override.
    let mut ds = Dataset::new(Schema::new(vec!["Flight", "Source", "Dep"]));
    for f in 0..16usize {
        let flight = format!("F{f:02}");
        let truth = format!("{:02}:00", 5 + f % 18);
        let wrong = format!("{:02}:30", 5 + f % 18);
        for s in 0..3 {
            ds.push_row(&[flight.clone(), format!("good{s}"), truth.clone()]);
        }
        let hard = f % 4 == 0;
        for s in 0..6usize {
            // On easy flights the copycats are wrong two thirds of the
            // time with *rotating* membership — uncorrelated enough for
            // agreement-based reliability estimation to separate them from
            // the good sources (fully parity-aligned errors would be the
            // classic source-dependence degenerate case).
            let is_wrong = if hard {
                s != 5 // 5 of 6 copy the same mistake
            } else {
                (s + f) % 3 != 0
            };
            let value = if is_wrong {
                wrong.clone()
            } else {
                truth.clone()
            };
            ds.push_row(&[flight.clone(), format!("bad{s}"), value]);
        }
    }
    let outcome = HoloClean::new(ds)
        .with_constraint_text("FD: Flight -> Dep")
        .unwrap()
        .with_config(
            HoloConfig::default()
                .with_tau(0.3)
                .with_source("Flight", "Source"),
        )
        .run()
        .unwrap();
    let wrong_to_right = outcome
        .report
        .repairs
        .iter()
        .filter(|r| r.old_value.ends_with(":30") && r.new_value.ends_with(":00"))
        .count();
    let right_to_wrong = outcome
        .report
        .repairs
        .iter()
        .filter(|r| r.old_value.ends_with(":00") && r.new_value.ends_with(":30"))
        .count();
    // 4 hard flights × 5 wrong cells + 12 easy flights × 3 wrong cells = 56
    // repairable errors; the hard flights are the ones that prove the point.
    assert!(
        wrong_to_right >= 40,
        "fixed only {wrong_to_right}: {:?}",
        outcome.report.repairs.iter().take(5).collect::<Vec<_>>()
    );
    assert!(
        right_to_wrong <= 2,
        "damaged {right_to_wrong} correct cells"
    );
}
