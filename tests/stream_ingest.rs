//! The streaming-equivalence contract of PR 5:
//!
//! 1. feeding hospital in K batches yields repairs **byte-identical** to
//!    the one-shot pipeline — cells, values, and full posteriors — for
//!    K ∈ {1, 4, 16} at every thread count;
//! 2. the incrementality is real: after the first batch, the design
//!    matrix and the component index are patched in place only —
//!    `full_builds` stays pinned at 1 for the whole stream.

use holoclean_repro::holo_datagen::{hospital, HospitalConfig};
use holoclean_repro::holo_dataset::{Dataset, Schema};
use holoclean_repro::holoclean::stream::StreamSession;
use holoclean_repro::holoclean::{HoloClean, HoloConfig, RepairReport};

fn hospital_rows() -> (Schema, String, Vec<Vec<String>>) {
    let gen = hospital(HospitalConfig {
        rows: 120,
        seed: 23,
        ..HospitalConfig::default()
    });
    let schema = gen.dirty.schema().clone();
    let rows: Vec<Vec<String>> = gen
        .dirty
        .tuples()
        .map(|t| {
            schema
                .attrs()
                .map(|a| gen.dirty.cell_str(t, a).to_string())
                .collect()
        })
        .collect();
    (schema, gen.constraints_text.clone(), rows)
}

fn one_shot(
    schema: &Schema,
    constraints: &str,
    rows: &[Vec<String>],
    threads: usize,
) -> RepairReport {
    let mut ds = Dataset::new(schema.clone());
    for row in rows {
        ds.push_row(row);
    }
    HoloClean::new(ds)
        .with_constraint_text(constraints)
        .unwrap()
        .with_config(HoloConfig::default().with_threads(threads))
        .run()
        .unwrap()
        .report
}

fn streamed(
    schema: &Schema,
    constraints: &str,
    rows: &[Vec<String>],
    batches: usize,
    threads: usize,
) -> StreamSession {
    let mut session = StreamSession::new(
        schema.clone(),
        constraints,
        HoloConfig::default().with_threads(threads),
    )
    .unwrap();
    for chunk in rows.chunks(rows.len().div_ceil(batches)) {
        session.push_batch(chunk).unwrap();
    }
    session
}

/// Repairs and posteriors compared down to the f64 bits — `PartialEq` on
/// `RepairReport` compares `f64` by value, so assert on bits explicitly
/// for the probabilities.
fn assert_bitwise_equal(a: &RepairReport, b: &RepairReport, label: &str) {
    assert_eq!(a.repairs.len(), b.repairs.len(), "{label}: repair count");
    for (x, y) in a.repairs.iter().zip(&b.repairs) {
        assert_eq!(x.cell, y.cell, "{label}");
        assert_eq!(x.old_value, y.old_value, "{label}");
        assert_eq!(x.new_value, y.new_value, "{label}");
        assert_eq!(
            x.probability.to_bits(),
            y.probability.to_bits(),
            "{label}: probability bits of {:?}",
            x.cell
        );
    }
    assert_eq!(
        a.posteriors.len(),
        b.posteriors.len(),
        "{label}: posteriors"
    );
    for (x, y) in a.posteriors.iter().zip(&b.posteriors) {
        assert_eq!(x.cell, y.cell, "{label}");
        assert_eq!(
            x.candidates.len(),
            y.candidates.len(),
            "{label}: {:?}",
            x.cell
        );
        for ((sx, px), (sy, py)) in x.candidates.iter().zip(&y.candidates) {
            // Symbols are pool-local (the two loaders intern in different
            // orders); posterior identity is (position, probability bits).
            let _ = (sx, sy);
            assert_eq!(
                px.to_bits(),
                py.to_bits(),
                "{label}: posterior bits of {:?}",
                x.cell
            );
        }
    }
}

#[test]
fn hospital_streams_bit_identical_to_batch_at_any_split_and_thread_count() {
    let (schema, constraints, rows) = hospital_rows();
    let reference = one_shot(&schema, &constraints, &rows, 1);
    assert!(
        reference.repairs.len() > 5,
        "the generated hospital slice must need repairs (got {})",
        reference.repairs.len()
    );
    // One-shot is itself thread-count invariant (the PR 1 contract).
    for threads in [2, 4] {
        assert_bitwise_equal(
            &one_shot(&schema, &constraints, &rows, threads),
            &reference,
            &format!("one-shot threads={threads}"),
        );
    }
    for batches in [1, 4, 16] {
        for threads in [1, 2, 4] {
            let mut session = streamed(&schema, &constraints, &rows, batches, threads);
            let report = session.report();
            assert_bitwise_equal(
                &report,
                &reference,
                &format!("K={batches}, threads={threads}"),
            );
        }
    }
}

#[test]
fn hospital_stream_never_rebuilds_after_the_first_batch() {
    let (schema, constraints, rows) = hospital_rows();
    let mut session =
        StreamSession::new(schema, &constraints, HoloConfig::default().with_threads(1)).unwrap();
    let mut reports = Vec::new();
    let chunks: Vec<_> = rows.chunks(rows.len().div_ceil(16)).collect();
    let n_batches = chunks.len() as u64;
    for chunk in chunks {
        reports.push(session.push_batch(chunk).unwrap());
        // Pinned from the very first batch: one full design build, one
        // full component-index build, patches only ever after.
        assert_eq!(session.design_stats().full_builds, 1);
        assert_eq!(session.component_stats().full_builds, 1);
    }
    // Interleave batch-equivalent reads with ingestion: reads must not
    // rebuild either.
    let _ = session.report();
    assert_eq!(session.design_stats().full_builds, 1);
    assert_eq!(session.component_stats().full_builds, 1);
    let stats = session.ingest_stats();
    assert_eq!(stats.batches, n_batches);
    assert_eq!(stats.tuples as usize, rows.len());
    assert!(stats.vars_added > 0);
    assert!(stats.cells_recomputed > 0);
    assert!(
        stats.delta_violations as usize >= reports[0].new_violations,
        "delta detection found violations"
    );
    // The design matrix was patched (vars appended across batches), not
    // recompiled.
    assert!(session.design_stats().vars_patched > 0);
    let timings = session.timings();
    assert_eq!(timings.ingest, stats);
    assert!(timings.detect + timings.compile > std::time::Duration::ZERO);
}

#[test]
fn stream_counts_match_one_shot_detection() {
    let (schema, constraints, rows) = hospital_rows();
    let session = streamed(&schema, &constraints, &rows, 4, 1);
    // The delta union must equal the one-shot detection totals.
    let mut ds = Dataset::new(session.dataset().schema().clone());
    for row in &rows {
        ds.push_row(row);
    }
    let outcome = HoloClean::new(ds)
        .with_constraint_text(&constraints)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(session.violations(), outcome.violations);
    assert_eq!(session.noisy_cells(), outcome.noisy_cells);
    assert_eq!(session.compile_stats().query_vars, outcome.model.query_vars);
    assert_eq!(
        session.compile_stats().evidence_vars,
        outcome.model.evidence_vars
    );
}
