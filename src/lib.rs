//! Umbrella crate for the HoloClean reproduction workspace.
//!
//! This root package hosts the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`, and re-exports the public
//! crates so both can use a single dependency.
//!
//! # Workspace layout
//!
//! The workspace is a dependency DAG rooted at the relational substrate;
//! `cargo build --release && cargo test` at the repository root covers
//! every crate.
//!
//! | crate (`crates/…`) | lib name | role |
//! |---|---|---|
//! | `parallel` | `holo_parallel` | deterministic data-parallel primitives over std scoped threads |
//! | `dataset` | [`holo_dataset`] | tables, value interning, CSV, statistics |
//! | `constraints` | [`holo_constraints`] | denial constraints, parsing, violation detection |
//! | `factor` | [`holo_factor`] | factor graphs, SGD learning, (multi-chain) Gibbs |
//! | `external` | [`holo_external`] | dictionaries and matching dependencies |
//! | `detect` | [`holo_detect`] | pluggable error detection |
//! | `core` | [`holoclean`] | the staged repair engine and its compiler |
//! | `baselines` | [`holo_baselines`] | Holistic, KATARA and SCARE |
//! | `datagen` | [`holo_datagen`] | deterministic evaluation dataset generators |
//! | `bench` | `holo_bench` | experiment harness + criterion benches |
//!
//! `third_party/` holds offline API-compatible stubs for `serde`, `rand`,
//! `proptest` and `criterion` — the build environment has no registry
//! access, so the workspace vendors the small API surface it actually
//! uses (see each stub's crate docs). Swap the `[workspace.dependencies]`
//! paths for registry versions to use the real crates.
//!
//! # The staged engine
//!
//! The repair pipeline (paper §2.2/Figure 2) is an explicit stage list in
//! `holoclean::pipeline`:
//!
//! ```text
//! PipelineContext (immutable: dataset, constraints, matches, config)
//!        │
//!        ▼
//! Detect ─► Compile ─► Learn ─► Infer        (Pipeline::standard())
//!   │         │          │        │
//!   ▼         ▼          ▼        ▼
//!          StageData (violations, noisy, model, weights, marginals)
//! ```
//!
//! Each stage implements `holoclean::pipeline::Stage`, bills its
//! wall-clock to a `StageTimings` slot, and parallelises internally over
//! `HoloConfig::threads` — violation probing, domain pruning,
//! featurization, co-occurrence statistics and Gibbs chains all shard
//! across worker threads, and every parallel path merges shard results in
//! input order, so **any thread count produces bit-for-bit the
//! `threads = 1` output**. To add a stage, implement `Stage` (choosing the
//! `StageKind` whose time budget it belongs to) and splice it in with
//! `Pipeline::insert_after`; `HoloClean::run` is a thin driver over
//! `Pipeline::standard()`.
//!
//! The model's CSR design matrix is compiled **once** (end of Compile)
//! and then maintained **incrementally**: feedback pins and other graph
//! mutations splice the affected variable's rows in place instead of
//! invalidating the cache, a patched matrix is bit-for-bit a fresh
//! compile of the mutated adjacency, and `holo_factor::DesignStats`
//! (carried in `StageTimings::design` and
//! `holoclean::FeedbackSession::design_stats`) counts full builds vs
//! patched rows so the no-rebuild claim is observable.
//!
//! # Quick start
//!
//! ```
//! use holoclean_repro::holo_dataset::{Dataset, Schema};
//! use holoclean_repro::holoclean::{HoloClean, HoloConfig};
//!
//! let mut ds = Dataset::new(Schema::new(vec!["Zip", "City"]));
//! for _ in 0..8 { ds.push_row(&["60608", "Chicago"]); }
//! ds.push_row(&["60608", "Cicago"]); // typo to repair
//! let outcome = HoloClean::new(ds)
//!     .with_constraint_text("FD: Zip -> City").unwrap()
//!     .with_config(HoloConfig::default().with_threads(0)) // all cores
//!     .run().unwrap();
//! assert_eq!(outcome.report.repairs[0].new_value, "Chicago");
//! ```

pub use holo_baselines;
pub use holo_constraints;
pub use holo_datagen;
pub use holo_dataset;
pub use holo_detect;
pub use holo_external;
pub use holo_factor;
pub use holoclean;
