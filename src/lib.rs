//! Umbrella crate for the HoloClean reproduction workspace.
//!
//! This root package exists to host the runnable examples in `examples/`
//! and the cross-crate integration tests in `tests/`. It re-exports the
//! public crates so examples can use a single dependency:
//!
//! * [`holo_dataset`] — relational substrate (tables, interning, statistics)
//! * [`holo_constraints`] — denial constraints and violation detection
//! * [`holo_factor`] — factor-graph grounding, learning and Gibbs sampling
//! * [`holo_external`] — external dictionaries and matching dependencies
//! * [`holo_detect`] — error-detection module
//! * [`holoclean`] — the HoloClean compiler and repair pipeline
//! * [`holo_baselines`] — Holistic, KATARA and SCARE baselines
//! * [`holo_datagen`] — evaluation dataset generators

pub use holo_baselines;
pub use holo_constraints;
pub use holo_datagen;
pub use holo_dataset;
pub use holo_detect;
pub use holo_external;
pub use holo_factor;
pub use holoclean;
