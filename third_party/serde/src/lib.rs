//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the macro namespace
//! (no-op derives from the sibling `serde_derive` stub) and the trait
//! namespace (empty marker traits), which is all the workspace uses. If a
//! future PR needs real serialization, replace this stub with a vendored
//! copy of the actual crate — the dependency declarations won't change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; never implemented or required.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; never implemented or required.
pub trait Deserialize<'de>: Sized {}
