//! Offline stub of `serde_derive`.
//!
//! The build environment has no network access and no vendored registry, so
//! the real serde cannot be compiled. The workspace only ever *derives*
//! `Serialize`/`Deserialize` — nothing serializes at runtime — so these
//! derives accept the full attribute syntax (including `#[serde(...)]`
//! helpers) and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
