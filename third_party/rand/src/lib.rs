//! Offline stub of `rand` 0.8.
//!
//! The build environment is fully offline, so this crate re-implements the
//! small API surface the workspace uses: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64 — *not* the ChaCha12 of the real crate, but every
//! consumer in this workspace only requires determinism under a seed, not a
//! specific stream), [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`seq::SliceRandom::shuffle`].

use std::ops::Range;

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` ⇒ uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Uniform draw from a range; panics on an empty range like the real
    /// crate does.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from (`rng.gen_range(a..b)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free bounding; bias is < 2^-64
                // per draw, far below what any consumer here can observe.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub stand-in for the real
    /// crate's ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom` used here: in-place Fisher–Yates.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks a reference, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
