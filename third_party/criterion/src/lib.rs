//! Offline stub of `criterion`.
//!
//! Measures wall-clock time with `std::time::Instant` and reports
//! mean/median/min per benchmark. API-compatible with the subset the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] and
//! [`black_box`]. No statistical analysis, no comparison against saved
//! baselines — numbers print to stdout and the caller eyeballs them.
//!
//! Like real criterion, the harness infers its mode from how cargo ran
//! it: `cargo bench` passes `--bench` (full timed samples), while `cargo
//! test --benches` passes nothing and every benchmark runs exactly one
//! iteration as a smoke test (`--test` forces that too).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark's summary statistics, recorded so callers can
/// persist a machine-readable snapshot next to the stdout report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full label, `group/name` once inside a group.
    pub label: String,
    /// Mean wall-clock per sample, nanoseconds.
    pub mean_ns: u64,
    /// Median wall-clock per sample, nanoseconds.
    pub median_ns: u64,
    /// Fastest sample, nanoseconds.
    pub min_ns: u64,
    /// Number of timed samples.
    pub samples: u64,
}

/// Top-level driver handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
    /// One-iteration smoke mode (`--test`).
    test_mode: bool,
    /// Substring filter from the CLI, if any.
    filter: Option<String>,
    /// Every benchmark run so far, in execution order.
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut bench_mode = false;
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => test_mode = true,
                // `cargo bench` passes `--bench`; `cargo test --benches`
                // passes nothing — like real criterion, a run without
                // `--bench` is a smoke test.
                "--bench" => bench_mode = true,
                // Flags cargo/criterion callers pass that we accept and
                // ignore (value-taking ones consume their value).
                "--nocapture" | "--quiet" | "-q" | "--verbose" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') && filter.is_none() => {
                    filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        Criterion {
            sample_size: 20,
            test_mode: test_mode || !bench_mode,
            filter,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let samples = self.sample_size;
        self.run_one(&id.0, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: if self.test_mode { 1 } else { samples },
            test_mode: self.test_mode,
            durations: Vec::new(),
        };
        f(&mut b);
        if let Some(record) = b.report(label) {
            self.records.push(record);
        }
    }

    /// Whether the binary runs in one-iteration smoke mode (`--test`) —
    /// snapshot writers should skip persisting those numbers.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// The summaries of every benchmark run so far, in execution order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, samples, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier (`group/label` once inside a group).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. `0.5`.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one sample per call, after one untimed warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.test_mode {
            black_box(routine()); // warm-up
        }
        self.durations.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) -> Option<BenchRecord> {
        if self.durations.is_empty() {
            println!("bench {label:<44} (no samples)");
            return None;
        }
        let mut sorted = self.durations.clone();
        sorted.sort_unstable();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "bench {label:<44} mean {:>12?}  median {:>12?}  min {:>12?}  ({} samples)",
            mean,
            median,
            sorted[0],
            sorted.len()
        );
        Some(BenchRecord {
            label: label.to_string(),
            mean_ns: mean.as_nanos() as u64,
            median_ns: median.as_nanos() as u64,
            min_ns: sorted[0].as_nanos() as u64,
            samples: sorted.len() as u64,
        })
    }
}

/// Declares a group-running function from benchmark functions. The
/// function returns the driver so callers can inspect
/// [`Criterion::records`] — e.g. to persist a `BENCH_*.json` snapshot.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() -> $crate::Criterion {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion
        }
    };
}

/// Declares `main` from [`criterion_group!`] outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( let _ = $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
            filter: None,
            records: Vec::new(),
        };
        let mut calls = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(4).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 4 samples.
        assert_eq!(calls, 5);
        // The run is also captured for snapshot writers.
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].label, "g/count");
        assert_eq!(c.records()[0].samples, 4);
        assert!(c.records()[0].min_ns <= c.records()[0].median_ns);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            sample_size: 1,
            test_mode: true,
            filter: None,
            records: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(0.5), &0.5f64, |b, &x| {
            b.iter(|| assert_eq!(x, 0.5))
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 1,
            test_mode: false,
            filter: Some("zzz".into()),
            records: Vec::new(),
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
        assert!(c.records().is_empty());
    }
}
