//! Offline stub of `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! strategies for numeric ranges, simple `"[a-z]{m,n}"`-style string
//! patterns, tuples, `Vec<S>`, [`Just`], [`collection::vec`], the
//! [`proptest!`] macro (with `#![proptest_config(...)]`) and the
//! `prop_assert*` macros. Failing cases are reported with their case index
//! and seed; there is **no shrinking** — failures print the raw input via
//! the panic message instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG driving test-case generation.
pub type TestRng = StdRng;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: seeded from the test name so every run of
/// the suite exercises the same inputs (reproducible CI) while distinct
/// tests draw distinct streams.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing the predicate (regenerating; panics if the
    /// predicate rejects 1000 draws in a row).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.reason
        );
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// String pattern strategy: a single `[class]{m,n}` regex-like term, the
/// only string-strategy shape used in this workspace (`"[a-z]{0,12}"`,
/// `"[ -~]{0,10}"`, …). Unsupported patterns panic with a pointer here.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("proptest stub supports only \"[class]{{m,n}}\" string patterns, got {self:?}")
        });
        let len = rng.gen_range(min..max + 1);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parses `[a-zXY ]{m,n}` into (expanded character set, m, n).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (m, n) = counts.split_once(',')?;
    let (min, max) = (m.trim().parse().ok()?, n.trim().parse().ok()?);
    if min > max {
        return None;
    }
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            chars.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Property-test entry point; see the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    // No shrinking in the offline stub: a failing assert
                    // reports its own values; __case identifies the draw.
                    let _ = __case;
                    $body
                }
            }
        )*
    };
}

/// `assert!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let (chars, min, max) = super::parse_class_pattern("[a-c]{1,4}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 4));
        let (chars, _, _) = super::parse_class_pattern("[ -~]{0,10}").unwrap();
        assert_eq!(chars.len(), 95, "printable ASCII");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        let s = collection::vec(0u8..9, 3..20);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -2.0f64..2.0, s in "[a-z]{1,5}") {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(!s.is_empty() && s.len() <= 5);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn combinators_compose(v in collection::vec((0u8..4, 0u8..4), 0..12)) {
            prop_assert!(v.len() < 12);
            let doubled = Just(7usize).prop_map(|n| n * 2);
            prop_assert_eq!(doubled.generate(&mut super::test_rng("t")), 14);
        }
    }
}
